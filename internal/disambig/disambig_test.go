package disambig

import (
	"context"
	"errors"
	"strings"
	"testing"

	"repro/internal/lingproc"
	"repro/internal/semnet"
	"repro/internal/simmeasure"
	"repro/internal/sphere"
	"repro/internal/wordnet"
	"repro/internal/xmltree"
	"repro/xsdferrors"
)

// parse builds a pre-processed tree over the embedded lexicon.
func parse(t *testing.T, doc string) *xmltree.Tree {
	t.Helper()
	tr, err := xmltree.ParseString(doc, xmltree.ParseOptions{IncludeContent: true, Tokenize: lingproc.Tokenize})
	if err != nil {
		t.Fatal(err)
	}
	lingproc.ProcessTree(tr, wordnet.Default())
	return tr
}

func find(t *testing.T, tr *xmltree.Tree, label string) *xmltree.Node {
	t.Helper()
	for _, n := range tr.Nodes() {
		if n.Label == label {
			return n
		}
	}
	t.Fatalf("node %q not found", label)
	return nil
}

// figure1Doc is the movie document of the paper's Figure 1.a.
const figure1Doc = `<films>
  <picture title="Rear Window">
    <director>Hitchcock</director>
    <year>1954</year>
    <genre>mystery</genre>
    <cast><star>Stewart</star><star>Kelly</star></cast>
    <plot>A wheelchair bound photographer spies on his neighbors</plot>
  </picture>
</films>`

// TestKellyDisambiguation reproduces the paper's flagship example: in the
// Figure 1 context, "Kelly" must resolve to Grace Kelly the actress, not
// Gene Kelly the dancer or Emmett Kelly the clown.
func TestKellyDisambiguation(t *testing.T) {
	tr := parse(t, figure1Doc)
	kelly := find(t, tr, "kelly")
	d := New(wordnet.Default(), Options{Radius: 2, Method: ConceptBased, SimWeights: simmeasure.EqualWeights()})
	s, ok := d.Node(kelly)
	if !ok {
		t.Fatal("kelly not disambiguated")
	}
	if s.ID() != "kelly.n.01" {
		t.Errorf("kelly resolved to %s, want kelly.n.01 (Grace Kelly)", s.ID())
	}
}

// TestCastDisambiguation: "cast" in a movie context is the ensemble of
// actors, not a mold or plaster bandage.
func TestCastDisambiguation(t *testing.T) {
	tr := parse(t, figure1Doc)
	cast := find(t, tr, "cast")
	for _, method := range []Method{ConceptBased, Combined} {
		d := New(wordnet.Default(), Options{Radius: 2, Method: method,
			SimWeights: simmeasure.EqualWeights(), ConceptWeight: 0.5, ContextWeight: 0.5})
		s, ok := d.Node(cast)
		if !ok {
			t.Fatalf("%v: cast not disambiguated", method)
		}
		if s.ID() != "cast.n.01" {
			t.Errorf("%v: cast resolved to %s, want cast.n.01", method, s.ID())
		}
	}
}

func TestMonosemousShortCircuit(t *testing.T) {
	tr := parse(t, `<cast><star>Stewart</star><prologue>x</prologue></cast>`)
	prologue := find(t, tr, "prologue")
	d := New(wordnet.Default(), Options{Radius: 1, Method: ConceptBased, SimWeights: simmeasure.EqualWeights()})
	s, ok := d.Node(prologue)
	if !ok || s.ID() != "prologue.n.01" || s.Score != 1 {
		t.Errorf("monosemous label: got %v %v, want prologue.n.01 score 1 (Assumption 4)", s, ok)
	}
}

func TestUnknownLabelNotAssigned(t *testing.T) {
	tr := parse(t, `<cast><zzqx>foo</zzqx></cast>`)
	unk := find(t, tr, "zzqx")
	d := New(wordnet.Default(), DefaultOptions())
	if _, ok := d.Node(unk); ok {
		t.Error("unknown label should not receive a sense")
	}
}

// TestCompoundSingleConcept: "FirstName" joins to the single concept
// first_name.n.01 (§3.2 case 2a) and is assigned directly.
func TestCompoundSingleConcept(t *testing.T) {
	tr := parse(t, `<actor><FirstName>Grace</FirstName><LastName>Kelly</LastName></actor>`)
	fn := find(t, tr, "first name")
	d := New(wordnet.Default(), DefaultOptions())
	s, ok := d.Node(fn)
	if !ok || s.ID() != "first_name.n.01" {
		t.Errorf("FirstName -> %v %v, want first_name.n.01", s, ok)
	}
}

// TestCompoundPair: a compound with no single concept gets a sense pair
// (Eq. 10) whose ID joins both concepts.
func TestCompoundPair(t *testing.T) {
	tr := parse(t, `<product><ListPrice currency="usd">42</ListPrice><item>book</item></product>`)
	lp := find(t, tr, "list price")
	if len(lp.Tokens) != 2 {
		t.Fatalf("tokens = %v", lp.Tokens)
	}
	d := New(wordnet.Default(), Options{Radius: 2, Method: ConceptBased, SimWeights: simmeasure.EqualWeights()})
	s, ok := d.Node(lp)
	if !ok {
		t.Fatal("compound not disambiguated")
	}
	parts := strings.Split(s.ID(), "+")
	if len(parts) != 2 {
		t.Fatalf("compound sense id = %q, want two concepts", s.ID())
	}
	if !strings.HasPrefix(parts[0], "list.") || !strings.HasPrefix(parts[1], "price.") {
		t.Errorf("compound parts = %v", parts)
	}
}

// TestCompoundFallbackSingleToken: when only one token of a compound is
// known ("initPage"), candidates come from that token alone.
func TestCompoundFallbackSingleToken(t *testing.T) {
	tr := parse(t, `<article><initPage>12</initPage><title>database design</title></article>`)
	ip := find(t, tr, "init page")
	d := New(wordnet.Default(), Options{Radius: 2, Method: ConceptBased, SimWeights: simmeasure.EqualWeights()})
	s, ok := d.Node(ip)
	if !ok {
		t.Fatal("fallback compound not disambiguated")
	}
	if !strings.HasPrefix(s.ID(), "page.") || strings.Contains(s.ID(), "+") {
		t.Errorf("fallback sense = %s, want single page.* concept", s.ID())
	}
}

func TestContextScoreMatchesCosine(t *testing.T) {
	tr := parse(t, figure1Doc)
	cast := find(t, tr, "cast")
	net := wordnet.Default()
	d := New(net, Options{Radius: 1, Method: ContextBased, SimWeights: simmeasure.EqualWeights()})
	got := d.ContextScore("cast.n.01", cast)
	want := sphere.Cosine(sphere.ContextVector(cast, 1, net), sphere.ConceptVector(net, "cast.n.01", 1))
	if diff := got - want; diff > 1e-12 || diff < -1e-12 {
		t.Errorf("ContextScore = %.15f, want %.15f", got, want)
	}
}

func TestCombinedIsWeightedMix(t *testing.T) {
	tr := parse(t, figure1Doc)
	cast := find(t, tr, "cast")
	net := wordnet.Default()
	conceptOnly := New(net, Options{Radius: 1, Method: Combined, SimWeights: simmeasure.EqualWeights(),
		ConceptWeight: 1, ContextWeight: 0})
	pure := New(net, Options{Radius: 1, Method: ConceptBased, SimWeights: simmeasure.EqualWeights()})
	s1, _ := conceptOnly.Node(cast)
	s2, _ := pure.Node(cast)
	if s1.ID() != s2.ID() || s1.Score != s2.Score {
		t.Errorf("combined with w_context=0 differs from concept-based: %v vs %v", s1, s2)
	}
}

func TestScoresInUnitRange(t *testing.T) {
	tr := parse(t, figure1Doc)
	net := wordnet.Default()
	for _, method := range []Method{ConceptBased, ContextBased, Combined} {
		d := New(net, Options{Radius: 2, Method: method, SimWeights: simmeasure.EqualWeights(),
			ConceptWeight: 0.5, ContextWeight: 0.5})
		for _, n := range tr.Nodes() {
			if s, ok := d.Node(n); ok {
				if s.Score < 0 || s.Score > 1 {
					t.Errorf("%v: score(%s) = %f out of range", method, n.Label, s.Score)
				}
			}
		}
	}
}

func TestApplyAnnotatesInPlace(t *testing.T) {
	tr := parse(t, figure1Doc)
	d := New(wordnet.Default(), Options{Radius: 1, Method: ConceptBased, SimWeights: simmeasure.EqualWeights()})
	n := d.Apply(tr.Nodes())
	if n == 0 {
		t.Fatal("nothing assigned")
	}
	annotated := 0
	for _, x := range tr.Nodes() {
		if x.Sense != "" {
			annotated++
		}
	}
	if annotated != n {
		t.Errorf("Apply reported %d but %d nodes carry senses", n, annotated)
	}
	// Numeric token "1954" has no senses and must stay untouched.
	if y := find(t, tr, "1954"); y.Sense != "" {
		t.Errorf("numeric token got sense %s", y.Sense)
	}
}

func TestDeterminism(t *testing.T) {
	net := wordnet.Default()
	for i := 0; i < 3; i++ {
		tr := parse(t, figure1Doc)
		d := New(net, Options{Radius: 2, Method: Combined, SimWeights: simmeasure.EqualWeights(),
			ConceptWeight: 0.6, ContextWeight: 0.4})
		d.Apply(tr.Nodes())
		var sb strings.Builder
		for _, n := range tr.Nodes() {
			sb.WriteString(n.Sense)
			sb.WriteByte('|')
		}
		if i == 0 {
			deterministicBaseline = sb.String()
		} else if sb.String() != deterministicBaseline {
			t.Fatal("disambiguation not deterministic across runs")
		}
	}
}

var deterministicBaseline string

func TestMethodString(t *testing.T) {
	if ConceptBased.String() != "concept-based" || ContextBased.String() != "context-based" ||
		Combined.String() != "combined" {
		t.Error("method names wrong")
	}
	if !strings.Contains(Method(9).String(), "9") {
		t.Error("unknown method formatting")
	}
}

func TestSenseID(t *testing.T) {
	s := Sense{Concepts: []semnet.ConceptID{"a.n.01", "b.n.02"}}
	if s.ID() != "a.n.01+b.n.02" {
		t.Errorf("compound ID = %s", s.ID())
	}
	if (Sense{Concepts: []semnet.ConceptID{"a.n.01"}}).ID() != "a.n.01" {
		t.Error("single ID wrong")
	}
}

func TestDefaultOptionsRadiusFloor(t *testing.T) {
	d := New(wordnet.Default(), Options{Radius: 0})
	if d.Options().Radius != 1 {
		t.Errorf("radius floor = %d, want 1", d.Options().Radius)
	}
}

func TestApplyContextCancellation(t *testing.T) {
	tr := parse(t, `<films><picture><star>Kelly</star><genre>mystery</genre></picture></films>`)
	d := New(wordnet.Default(), DefaultOptions())

	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already canceled: no node may be disambiguated
	assigned, err := d.ApplyContext(ctx, tr.Nodes())
	if !errors.Is(err, xsdferrors.ErrCanceled) {
		t.Fatalf("want ErrCanceled, got %v", err)
	}
	if assigned != 0 {
		t.Errorf("canceled run assigned %d senses", assigned)
	}
	for _, n := range tr.Nodes() {
		if n.Sense != "" {
			t.Errorf("node %s disambiguated after cancellation", n.Label)
		}
	}

	// The hook seam fires per node and the live context lets work proceed.
	var visited int
	opts := DefaultOptions()
	opts.NodeHook = func(*xmltree.Node) { visited++ }
	d2 := New(wordnet.Default(), opts)
	assigned, err = d2.ApplyContext(context.Background(), tr.Nodes())
	if err != nil || assigned == 0 {
		t.Fatalf("live context: assigned=%d err=%v", assigned, err)
	}
	if visited != tr.Len() {
		t.Errorf("hook fired %d times, want %d", visited, tr.Len())
	}
}
