// Package xmlsim implements XML structural similarity via tree edit
// distance with pluggable label costs. The paper's own companion work
// (reference [53]: "A Novel XML Structure Comparison Framework based on
// Sub-tree Commonalities and Label Semantics") motivates the combination
// this package provides: the classic Zhang-Shasha ordered tree edit
// distance, with a rename cost that can be purely syntactic (labels equal
// or not) or *semantic* — derived from the similarity of the concepts XSDF
// assigned to the nodes. On the paper's Figure 1 pair (two documents
// describing the same movie with different tagging), syntactic distance is
// large while semantic distance collapses.
package xmlsim

import (
	"repro/internal/semnet"
	"repro/internal/simmeasure"
	"repro/internal/xmltree"
)

// CostModel prices the three edit operations. Costs must be non-negative;
// Rename(a, a-like) should be 0 for identical nodes for Distance to be a
// metric.
type CostModel interface {
	Delete(n *xmltree.Node) float64
	Insert(n *xmltree.Node) float64
	Rename(a, b *xmltree.Node) float64
}

// SyntacticCosts is the classic unit-cost model: deletion and insertion
// cost 1; rename costs 0 for equal labels and 1 otherwise.
type SyntacticCosts struct{}

// Delete implements CostModel.
func (SyntacticCosts) Delete(*xmltree.Node) float64 { return 1 }

// Insert implements CostModel.
func (SyntacticCosts) Insert(*xmltree.Node) float64 { return 1 }

// Rename implements CostModel.
func (SyntacticCosts) Rename(a, b *xmltree.Node) float64 {
	if a.Label == b.Label {
		return 0
	}
	return 1
}

// SemanticCosts prices renames by concept similarity: two nodes whose
// assigned senses are semantically close are cheap to align even when
// their labels differ ("star" vs "actor"). Nodes without senses fall back
// to the syntactic rule.
type SemanticCosts struct {
	sim *simmeasure.Measure
}

// NewSemanticCosts returns a semantic cost model over the given network.
func NewSemanticCosts(net *semnet.Network) *SemanticCosts {
	return &SemanticCosts{sim: simmeasure.New(net, simmeasure.EqualWeights())}
}

// Delete implements CostModel.
func (c *SemanticCosts) Delete(*xmltree.Node) float64 { return 1 }

// Insert implements CostModel.
func (c *SemanticCosts) Insert(*xmltree.Node) float64 { return 1 }

// Rename implements CostModel.
func (c *SemanticCosts) Rename(a, b *xmltree.Node) float64 {
	if a.Label == b.Label {
		return 0
	}
	if a.Sense == "" || b.Sense == "" {
		return 1
	}
	if a.Sense == b.Sense {
		return 0
	}
	sa, sb := firstConcept(a.Sense), firstConcept(b.Sense)
	return 1 - c.sim.Sim(sa, sb)
}

func firstConcept(sense string) semnet.ConceptID {
	for i := 0; i < len(sense); i++ {
		if sense[i] == '+' {
			return semnet.ConceptID(sense[:i])
		}
	}
	return semnet.ConceptID(sense)
}

// Distance computes the Zhang-Shasha ordered tree edit distance between two
// document trees under the cost model.
func Distance(t1, t2 *xmltree.Tree, costs CostModel) float64 {
	a := newOrdered(t1)
	b := newOrdered(t2)
	if a.size == 0 || b.size == 0 {
		// Degenerate: delete/insert everything.
		var d float64
		for _, n := range a.post {
			d += costs.Delete(n)
		}
		for _, n := range b.post {
			d += costs.Insert(n)
		}
		return d
	}

	td := make([][]float64, a.size+1)
	for i := range td {
		td[i] = make([]float64, b.size+1)
	}
	for _, x := range a.keyroots {
		for _, y := range b.keyroots {
			treedist(a, b, x, y, td, costs)
		}
	}
	return td[a.size][b.size]
}

// Similarity maps the edit distance into [0, 1]: 1 - dist / (|T1| + |T2|),
// the normalization of Zhang-Shasha distances by the maximal possible cost
// under unit delete/insert prices.
func Similarity(t1, t2 *xmltree.Tree, costs CostModel) float64 {
	total := float64(t1.Len() + t2.Len())
	if total == 0 {
		return 1
	}
	s := 1 - Distance(t1, t2, costs)/total
	if s < 0 {
		return 0
	}
	return s
}

// ordered holds the postorder decomposition Zhang-Shasha needs.
type ordered struct {
	size     int
	post     []*xmltree.Node // post[i-1] is the node with postorder index i
	leftmost []int           // l(i): postorder index of the leftmost leaf of i's subtree
	keyroots []int
}

func newOrdered(t *xmltree.Tree) *ordered {
	o := &ordered{}
	if t.Root == nil {
		return o
	}
	var walk func(n *xmltree.Node) int // returns l(n)
	walk = func(n *xmltree.Node) int {
		lm := 0
		for i, c := range n.Children {
			cl := walk(c)
			if i == 0 {
				lm = cl
			}
		}
		o.post = append(o.post, n)
		idx := len(o.post)
		if len(n.Children) == 0 {
			lm = idx
		}
		o.leftmost = append(o.leftmost, lm)
		return lm
	}
	walk(t.Root)
	o.size = len(o.post)
	// Keyroots: nodes whose leftmost leaf differs from every later node's.
	seen := map[int]bool{}
	for i := o.size; i >= 1; i-- {
		if !seen[o.leftmost[i-1]] {
			seen[o.leftmost[i-1]] = true
			o.keyroots = append([]int{i}, o.keyroots...)
		}
	}
	return o
}

// treedist fills td[i][j] for the subtree pair rooted at postorder indexes
// (x, y), per Zhang & Shasha (1989).
func treedist(a, b *ordered, x, y int, td [][]float64, costs CostModel) {
	lx, ly := a.leftmost[x-1], b.leftmost[y-1]
	m := x - lx + 2
	n := y - ly + 2
	fd := make([][]float64, m)
	for i := range fd {
		fd[i] = make([]float64, n)
	}
	for di := 1; di < m; di++ {
		fd[di][0] = fd[di-1][0] + costs.Delete(a.post[lx+di-2])
	}
	for dj := 1; dj < n; dj++ {
		fd[0][dj] = fd[0][dj-1] + costs.Insert(b.post[ly+dj-2])
	}
	for di := 1; di < m; di++ {
		i1 := lx + di - 1
		for dj := 1; dj < n; dj++ {
			j1 := ly + dj - 1
			del := fd[di-1][dj] + costs.Delete(a.post[i1-1])
			ins := fd[di][dj-1] + costs.Insert(b.post[j1-1])
			if a.leftmost[i1-1] == lx && b.leftmost[j1-1] == ly {
				ren := fd[di-1][dj-1] + costs.Rename(a.post[i1-1], b.post[j1-1])
				fd[di][dj] = min3(del, ins, ren)
				td[i1][j1] = fd[di][dj]
			} else {
				sub := fd[a.leftmost[i1-1]-lx][b.leftmost[j1-1]-ly] + td[i1][j1]
				fd[di][dj] = min3(del, ins, sub)
			}
		}
	}
}

func min3(a, b, c float64) float64 {
	if b < a {
		a = b
	}
	if c < a {
		a = c
	}
	return a
}
