package xmlsim

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/wordnet"
	"repro/internal/xmltree"
)

func tree(t testing.TB, doc string) *xmltree.Tree {
	t.Helper()
	tr, err := xmltree.ParseString(doc, xmltree.ParseOptions{IncludeContent: false})
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range tr.Nodes() {
		n.Label = n.Raw
	}
	return tr
}

func TestDistanceIdentity(t *testing.T) {
	a := tree(t, `<a><b/><c><d/></c></a>`)
	b := tree(t, `<a><b/><c><d/></c></a>`)
	if d := Distance(a, b, SyntacticCosts{}); d != 0 {
		t.Errorf("identical trees distance = %f", d)
	}
	if s := Similarity(a, b, SyntacticCosts{}); s != 1 {
		t.Errorf("identical trees similarity = %f", s)
	}
}

func TestDistanceKnownSmallCases(t *testing.T) {
	cases := []struct {
		a, b string
		want float64
	}{
		{`<a/>`, `<b/>`, 1},                       // one rename
		{`<a><b/></a>`, `<a/>`, 1},                // one delete
		{`<a/>`, `<a><b/><c/></a>`, 2},            // two inserts
		{`<a><b/><c/></a>`, `<a><c/><b/></a>`, 2}, // swap = 2 renames
		{`<a><b><c/></b></a>`, `<a><c/></a>`, 1},  // remove middle node (c keeps its place)
	}
	for _, c := range cases {
		got := Distance(tree(t, c.a), tree(t, c.b), SyntacticCosts{})
		if got != c.want {
			t.Errorf("Distance(%s, %s) = %f, want %f", c.a, c.b, got, c.want)
		}
	}
}

func TestDistanceSymmetricUnderUnitCosts(t *testing.T) {
	f := func(shapeA, shapeB []uint8) bool {
		a := randomTree(shapeA)
		b := randomTree(shapeB)
		d1 := Distance(a, b, SyntacticCosts{})
		d2 := Distance(b, a, SyntacticCosts{})
		return d1 == d2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestDistanceTriangleInequality(t *testing.T) {
	f := func(sa, sb, sc []uint8) bool {
		a, b, c := randomTree(sa), randomTree(sb), randomTree(sc)
		dab := Distance(a, b, SyntacticCosts{})
		dbc := Distance(b, c, SyntacticCosts{})
		dac := Distance(a, c, SyntacticCosts{})
		return dac <= dab+dbc+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func randomTree(shape []uint8) *xmltree.Tree {
	root := &xmltree.Node{Label: "r", Kind: xmltree.Element}
	nodes := []*xmltree.Node{root}
	for i, x := range shape {
		if len(nodes) >= 14 {
			break
		}
		parent := nodes[int(x)%len(nodes)]
		n := &xmltree.Node{Label: string(rune('a' + i%5)), Kind: xmltree.Element}
		parent.AddChild(n)
		nodes = append(nodes, n)
	}
	return xmltree.New(root)
}

// TestFigure1SemanticVsSyntactic is the package's headline: the two
// documents of the paper's Figure 1 describe the same movie with different
// structures and tagging. After disambiguation, the semantic cost model
// aligns "star" with "actor" and "picture" with "movie", so semantic
// similarity must clearly exceed syntactic similarity.
func TestFigure1SemanticVsSyntactic(t *testing.T) {
	net := wordnet.Default()
	fw, err := core.New(net, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	process := func(doc string) *xmltree.Tree {
		res, err := fw.ProcessReader(strings.NewReader(doc))
		if err != nil {
			t.Fatal(err)
		}
		return res.Tree
	}
	doc1 := process(`<films><picture><director>hitchcock</director><genre>mystery</genre>
		<cast><star>stewart</star><star>kelly</star></cast></picture></films>`)
	doc2 := process(`<movies><movie><name>vertigo</name><directed_by>alfred hitchcock</directed_by>
		<actors><actor>james stewart</actor><actor>grace kelly</actor></actors></movie></movies>`)

	syn := Similarity(doc1, doc2, SyntacticCosts{})
	sem := Similarity(doc1, doc2, NewSemanticCosts(net))
	if !(sem > syn) {
		t.Errorf("semantic similarity %.3f should exceed syntactic %.3f", sem, syn)
	}
	if sem-syn < 0.05 {
		t.Errorf("semantic gain too small: %.3f vs %.3f", sem, syn)
	}
	t.Logf("Figure 1 pair: syntactic %.3f, semantic %.3f", syn, sem)
}

func TestSemanticCostsFallbacks(t *testing.T) {
	net := wordnet.Default()
	c := NewSemanticCosts(net)
	a := &xmltree.Node{Label: "x"}
	b := &xmltree.Node{Label: "x"}
	if c.Rename(a, b) != 0 {
		t.Error("equal labels should cost 0")
	}
	b2 := &xmltree.Node{Label: "y"}
	if c.Rename(a, b2) != 1 {
		t.Error("sense-less differing labels should cost 1")
	}
	a.Sense, b2.Sense = "star.n.02", "actor.n.01"
	cost := c.Rename(a, b2)
	if cost <= 0 || cost >= 1 {
		t.Errorf("related senses rename cost = %f, want in (0,1)", cost)
	}
	b2.Sense = "star.n.02"
	if c.Rename(a, b2) != 0 {
		t.Error("identical senses should cost 0")
	}
}

func TestEmptyTrees(t *testing.T) {
	var empty xmltree.Tree
	a := tree(t, `<a><b/></a>`)
	if d := Distance(&empty, a, SyntacticCosts{}); d != 2 {
		t.Errorf("insert-all distance = %f, want 2", d)
	}
	if d := Distance(a, &empty, SyntacticCosts{}); d != 2 {
		t.Errorf("delete-all distance = %f, want 2", d)
	}
	if s := Similarity(&empty, &empty, SyntacticCosts{}); s != 1 {
		t.Errorf("two empty trees similarity = %f", s)
	}
}
