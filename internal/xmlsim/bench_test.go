package xmlsim

import (
	"testing"

	"repro/internal/corpus"
	"repro/internal/wordnet"
)

func BenchmarkDistanceSyntactic(b *testing.B) {
	docs := corpus.GenerateDataset(42, 1) // Shakespeare, ~200 nodes each
	a, c := docs[0].Tree, docs[1].Tree
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Distance(a, c, SyntacticCosts{})
	}
}

func BenchmarkDistanceSemantic(b *testing.B) {
	docs := corpus.GenerateDataset(42, 4) // small movie docs
	a, c := docs[0].Tree, docs[1].Tree
	costs := NewSemanticCosts(wordnet.Default())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Distance(a, c, costs)
	}
}
