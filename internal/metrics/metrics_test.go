package metrics

import (
	"math"
	"strings"
	"sync"
	"testing"
)

// TestHistogramBucketing: observations land in the right le-buckets and
// the snapshot is cumulative and monotone.
func TestHistogramBucketing(t *testing.T) {
	h := NewHistogram([]float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.1, 0.5, 1.0, 5, 100} {
		h.Observe(v)
	}
	s := h.Snapshot()
	// le=0.1 counts 0.05 and 0.1 (le is inclusive), le=1 adds 0.5 and 1.0,
	// le=10 adds 5; 100 only reaches +Inf (the total count).
	want := []uint64{2, 4, 5}
	for i, w := range want {
		if s.Cumulative[i] != w {
			t.Errorf("cumulative[le=%v] = %d, want %d", s.Bounds[i], s.Cumulative[i], w)
		}
	}
	if s.Count != 6 {
		t.Errorf("count = %d, want 6", s.Count)
	}
	if got, want := s.Sum, 0.05+0.1+0.5+1.0+5+100; math.Abs(got-want) > 1e-9 {
		t.Errorf("sum = %v, want %v", got, want)
	}
	for i := 1; i < len(s.Cumulative); i++ {
		if s.Cumulative[i] < s.Cumulative[i-1] {
			t.Fatalf("cumulative counts not monotone: %v", s.Cumulative)
		}
	}
}

// TestHistogramConcurrent: concurrent observers never lose a count
// (exactness of the final snapshot once writers are quiescent).
func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram(DefaultLatencyBuckets)
	const workers, each = 8, 5000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				h.Observe(float64(i%1000) / 1000)
			}
		}(w)
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != workers*each {
		t.Fatalf("count = %d, want %d", s.Count, workers*each)
	}
	if s.Cumulative[len(s.Cumulative)-1] > s.Count {
		t.Fatalf("last bucket %d exceeds count %d", s.Cumulative[len(s.Cumulative)-1], s.Count)
	}
}

// TestExpositionRoundTrip: everything the Expositor writes parses back
// through the strict parser, with values and labels intact.
func TestExpositionRoundTrip(t *testing.T) {
	h := NewHistogram([]float64{0.01, 0.1, 1})
	h.Observe(0.005)
	h.Observe(0.05)
	h.Observe(50)

	var b strings.Builder
	e := NewExpositor(&b)
	e.Family("xsdf_requests_total", "Requests served.", "counter")
	e.Sample("", []Label{{"code", "200"}}, 41)
	e.Sample("", []Label{{"code", "429"}}, 1)
	e.Family("xsdf_up", "Whether the server is up.", "gauge")
	e.Sample("", nil, 1)
	e.Family("xsdf_stage_duration_seconds", "Stage latency.", "histogram")
	e.Histogram([]Label{{"stage", "select"}}, h.Snapshot())
	e.Family("xsdf_weird_labels", `Help with "quotes" and a \ backslash`, "gauge")
	e.Sample("", []Label{{"route", `a"b\c` + "\nd"}}, 2.5)
	if err := e.Err(); err != nil {
		t.Fatal(err)
	}

	fams, err := Parse(strings.NewReader(b.String()))
	if err != nil {
		t.Fatalf("exposition failed to parse:\n%s\nerror: %v", b.String(), err)
	}
	if f := fams["xsdf_requests_total"]; f == nil || len(f.Samples) != 2 || f.Type != "counter" {
		t.Fatalf("requests_total family wrong: %+v", f)
	} else if f.Samples[0].Labels["code"] != "200" || f.Samples[0].Value != 41 {
		t.Errorf("first sample wrong: %+v", f.Samples[0])
	}
	hf := fams["xsdf_stage_duration_seconds"]
	if hf == nil || hf.Type != "histogram" {
		t.Fatalf("histogram family missing: %+v", hf)
	}
	// 3 finite buckets + +Inf + _sum + _count.
	if len(hf.Samples) != 6 {
		t.Fatalf("histogram series count = %d, want 6: %+v", len(hf.Samples), hf.Samples)
	}
	wl := fams["xsdf_weird_labels"]
	if wl == nil || len(wl.Samples) != 1 {
		t.Fatalf("weird-labels family wrong: %+v", wl)
	}
	if got := wl.Samples[0].Labels["route"]; got != `a"b\c`+"\nd" {
		t.Errorf("escaped label round-trip = %q", got)
	}
}

// TestExpositionHistogramInvariants: the parser rejects a histogram whose
// buckets are not cumulative or whose +Inf bucket disagrees with _count —
// the invariants the golden test relies on.
func TestExpositionHistogramInvariants(t *testing.T) {
	bad := []string{
		// Non-monotone buckets.
		"# HELP h x\n# TYPE h histogram\n" +
			`h_bucket{le="0.1"} 5` + "\n" + `h_bucket{le="1"} 3` + "\n" +
			`h_bucket{le="+Inf"} 5` + "\nh_sum 1\nh_count 5\n",
		// Missing +Inf.
		"# HELP h x\n# TYPE h histogram\n" +
			`h_bucket{le="0.1"} 1` + "\nh_sum 1\nh_count 1\n",
		// +Inf != _count.
		"# HELP h x\n# TYPE h histogram\n" +
			`h_bucket{le="+Inf"} 4` + "\nh_sum 1\nh_count 5\n",
	}
	for i, text := range bad {
		if _, err := Parse(strings.NewReader(text)); err == nil {
			t.Errorf("case %d: invalid histogram accepted:\n%s", i, text)
		}
	}
}

// TestParseRejectsMalformed: stray samples and malformed lines fail.
func TestParseRejectsMalformed(t *testing.T) {
	bad := []string{
		"no_family_yet 1\n",
		"# HELP a x\n# TYPE a counter\nb 1\n",
		"# HELP a x\n# TYPE a counter\na{unterminated=\"v 1\n",
		"# HELP a x\n# TYPE a wat\na 1\n",
		"# HELP a x\n# TYPE a counter\na notanumber\n",
	}
	for i, text := range bad {
		if _, err := Parse(strings.NewReader(text)); err == nil {
			t.Errorf("case %d: malformed exposition accepted:\n%s", i, text)
		}
	}
}

// TestFormatValue: the special values and shortest-round-trip floats.
func TestFormatValue(t *testing.T) {
	cases := map[float64]string{
		0:           "0",
		1:           "1",
		0.25:        "0.25",
		math.Inf(1): "+Inf",
	}
	for v, want := range cases {
		if got := formatValue(v); got != want {
			t.Errorf("formatValue(%v) = %q, want %q", v, got, want)
		}
	}
}
