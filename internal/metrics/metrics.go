// Package metrics is the hand-rolled observability kernel of the serving
// layer: lock-free instruments (Counter, Gauge, Histogram) plus a writer
// for the Prometheus text exposition format (version 0.0.4), so xsdfd can
// serve a scrapeable GET /metricsz without pulling a client library into
// the module.
//
// The package deliberately implements only what the framework needs:
//
//   - fixed-bucket histograms recorded with atomics (one Observe is two
//     atomic adds and one atomic increment — cheap enough to sit on every
//     pipeline stage boundary);
//   - an Expositor that renders families in a deterministic order with
//     escaped labels, cumulative monotone histogram buckets, the mandatory
//     +Inf bucket, and _sum/_count series, so any Prometheus-compatible
//     scraper parses the output byte-for-byte predictably.
//
// Instruments hold no registry state; the owner of the data (the server)
// snapshots its own sources and renders them per scrape. That matches the
// framework's existing observability style — StageStats, CacheStats, and
// GateStats are already snapshot APIs — and keeps the scrape path free of
// global registries and double-registration failure modes.
package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
)

// DefaultLatencyBuckets are the histogram upper bounds (in seconds) used
// for stage and request latencies: 100µs to 10s, roughly 2.5x apart. The
// pipeline's stages span sub-microsecond guards to near-budget
// disambiguation runs, so the low end matters as much as the tail.
var DefaultLatencyBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
	0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// Histogram is a concurrency-safe fixed-bucket histogram. Observations
// are recorded with atomics only; Snapshot is approximate under
// concurrent writes (counts may be torn across buckets by at most the
// in-flight observations), which is the standard trade for a scrape-path
// instrument.
type Histogram struct {
	bounds []float64       // sorted upper bounds, exclusive of +Inf
	counts []atomic.Uint64 // one per bound, plus the +Inf overflow at the end
	count  atomic.Uint64
	sum    atomic.Uint64 // float64 bits accumulated via CAS
}

// NewHistogram builds a histogram over the given upper bounds, which must
// be sorted ascending. The +Inf bucket is implicit.
func NewHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefaultLatencyBuckets
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("metrics: histogram bounds not ascending at %d: %v", i, bounds))
		}
	}
	return &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]atomic.Uint64, len(bounds)+1),
	}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	// Find the first bound >= v; values past every bound land in +Inf.
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// HistogramSnapshot is a point-in-time view of a Histogram, with
// cumulative bucket counts (Prometheus semantics: Cumulative[i] counts
// observations <= Bounds[i]; Count covers everything including +Inf).
type HistogramSnapshot struct {
	Bounds     []float64
	Cumulative []uint64
	Count      uint64
	Sum        float64
}

// Snapshot renders the histogram's current state with cumulative counts.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds:     h.bounds,
		Cumulative: make([]uint64, len(h.bounds)),
		Count:      h.count.Load(),
		Sum:        math.Float64frombits(h.sum.Load()),
	}
	var cum uint64
	for i := range h.bounds {
		cum += h.counts[i].Load()
		s.Cumulative[i] = cum
	}
	return s
}

// Label is one name="value" pair of a sample.
type Label struct{ Name, Value string }

// Expositor renders metric families in the Prometheus text format. Use
// one per scrape; families must be opened with Family before samples are
// written, and a family's samples must all be written before the next
// Family call (the format requires families to be contiguous).
type Expositor struct {
	w   io.Writer
	err error
	cur string
}

// NewExpositor wraps w.
func NewExpositor(w io.Writer) *Expositor { return &Expositor{w: w} }

// Err returns the first write error, if any.
func (e *Expositor) Err() error { return e.err }

// Family opens a new metric family: one # HELP and one # TYPE line. typ
// is "counter", "gauge", or "histogram".
func (e *Expositor) Family(name, help, typ string) {
	e.cur = name
	e.printf("# HELP %s %s\n", name, escapeHelp(help))
	e.printf("# TYPE %s %s\n", name, typ)
}

// Sample writes one sample line of the current family. suffix is appended
// to the family name ("" for plain counters/gauges, "_bucket" etc. for
// histogram series).
func (e *Expositor) Sample(suffix string, labels []Label, value float64) {
	e.printf("%s%s%s %s\n", e.cur, suffix, renderLabels(labels), formatValue(value))
}

// Histogram writes a full histogram series set — every cumulative bucket,
// the +Inf bucket, _sum, and _count — for the current family, with the
// given base labels on every line.
func (e *Expositor) Histogram(labels []Label, s HistogramSnapshot) {
	for i, b := range s.Bounds {
		e.Sample("_bucket", append(labels[:len(labels):len(labels)],
			Label{"le", formatValue(b)}), float64(s.Cumulative[i]))
	}
	e.Sample("_bucket", append(labels[:len(labels):len(labels)],
		Label{"le", "+Inf"}), float64(s.Count))
	e.Sample("_sum", labels, s.Sum)
	e.Sample("_count", labels, float64(s.Count))
}

func (e *Expositor) printf(format string, args ...any) {
	if e.err != nil {
		return
	}
	_, e.err = fmt.Fprintf(e.w, format, args...)
}

// renderLabels renders {a="b",c="d"}, or nothing for an empty set.
func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Name)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// formatValue renders a sample value the way Prometheus clients do:
// shortest round-trip representation, with +Inf/-Inf/NaN spelled out.
func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeLabel escapes a label value per the exposition format: backslash,
// double-quote, and newline.
func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return strings.ReplaceAll(s, `"`, `\"`)
}

// escapeHelp escapes a help string: backslash and newline (quotes are
// legal in help text).
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}
