// A minimal parser/validator for the Prometheus text exposition format:
// the consumer-side counterpart of the Expositor. It exists so the
// format is verified by code we run — the exposition golden test, the
// concurrent-scrape tests, and cmd/xsdf-loadgen's mid-run /metricsz
// check all parse through here — rather than trusted by eyeball.
package metrics

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Sample is one parsed sample line.
type Sample struct {
	// Name is the full sample name (family name plus any _bucket/_sum/
	// _count suffix).
	Name   string
	Labels map[string]string
	Value  float64
}

// Family is one parsed metric family: its # HELP / # TYPE metadata and
// every sample that belongs to it.
type Family struct {
	Name    string
	Help    string
	Type    string
	Samples []Sample
}

// suffixes a histogram family's samples may carry.
var histogramSuffixes = []string{"_bucket", "_sum", "_count"}

// Parse reads a full exposition and returns its families keyed by name.
// It is strict about everything the Expositor promises: every sample line
// must parse, every sample must belong to the most recently declared
// family (suffixed per its type), and histogram families must carry a
// +Inf bucket whose cumulative counts are monotone and consistent with
// _count. A violation returns an error naming the offending line.
func Parse(r io.Reader) (map[string]*Family, error) {
	families := map[string]*Family{}
	var cur *Family
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64<<10), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			kind, name, rest, err := parseMeta(line)
			if err != nil {
				return nil, fmt.Errorf("line %d: %v", lineNo, err)
			}
			f := families[name]
			if f == nil {
				f = &Family{Name: name}
				families[name] = f
			}
			switch kind {
			case "HELP":
				f.Help = rest
			case "TYPE":
				f.Type = rest
			}
			cur = f
			continue
		}
		s, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %v", lineNo, err)
		}
		if cur == nil {
			return nil, fmt.Errorf("line %d: sample %q before any family declaration", lineNo, s.Name)
		}
		if !sampleBelongsTo(cur, s.Name) {
			return nil, fmt.Errorf("line %d: sample %q does not belong to family %q (type %s)",
				lineNo, s.Name, cur.Name, cur.Type)
		}
		cur.Samples = append(cur.Samples, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	for _, f := range families {
		if f.Type == "histogram" {
			if err := validateHistogram(f); err != nil {
				return nil, fmt.Errorf("family %s: %v", f.Name, err)
			}
		}
	}
	return families, nil
}

// parseMeta parses a "# HELP name text" / "# TYPE name type" line.
func parseMeta(line string) (kind, name, rest string, err error) {
	fields := strings.SplitN(line, " ", 4)
	if len(fields) < 3 || fields[0] != "#" {
		return "", "", "", fmt.Errorf("malformed comment line %q", line)
	}
	kind = fields[1]
	if kind != "HELP" && kind != "TYPE" {
		return "", "", "", fmt.Errorf("unknown comment kind %q", kind)
	}
	name = fields[2]
	if !validName(name) {
		return "", "", "", fmt.Errorf("invalid metric name %q", name)
	}
	if len(fields) == 4 {
		rest = fields[3]
	}
	if kind == "TYPE" {
		switch rest {
		case "counter", "gauge", "histogram", "summary", "untyped":
		default:
			return "", "", "", fmt.Errorf("unknown metric type %q", rest)
		}
	}
	return kind, name, rest, nil
}

// parseSample parses one "name{labels} value" line.
func parseSample(line string) (Sample, error) {
	s := Sample{Labels: map[string]string{}}
	rest := line
	i := strings.IndexAny(rest, "{ ")
	if i < 0 {
		return s, fmt.Errorf("malformed sample line %q", line)
	}
	s.Name = rest[:i]
	if !validName(s.Name) {
		return s, fmt.Errorf("invalid sample name %q", s.Name)
	}
	rest = rest[i:]
	if rest[0] == '{' {
		end := -1
		inQuote := false
		for j := 1; j < len(rest); j++ {
			switch {
			case inQuote && rest[j] == '\\':
				j++ // skip the escaped character
			case rest[j] == '"':
				inQuote = !inQuote
			case !inQuote && rest[j] == '}':
				end = j
			}
			if end >= 0 {
				break
			}
		}
		if end < 0 {
			return s, fmt.Errorf("unterminated label set in %q", line)
		}
		if err := parseLabels(rest[1:end], s.Labels); err != nil {
			return s, fmt.Errorf("%v in %q", err, line)
		}
		rest = rest[end+1:]
	}
	rest = strings.TrimSpace(rest)
	v, err := parseValue(rest)
	if err != nil {
		return s, fmt.Errorf("bad value %q in %q", rest, line)
	}
	s.Value = v
	return s, nil
}

// parseLabels parses `a="b",c="d"` into dst.
func parseLabels(body string, dst map[string]string) error {
	for len(body) > 0 {
		eq := strings.Index(body, "=")
		if eq < 0 || eq+1 >= len(body) || body[eq+1] != '"' {
			return fmt.Errorf("malformed label pair near %q", body)
		}
		name := body[:eq]
		if !validName(name) {
			return fmt.Errorf("invalid label name %q", name)
		}
		// Find the closing quote, honoring backslash escapes.
		val := strings.Builder{}
		i := eq + 2
		closed := false
		for ; i < len(body); i++ {
			c := body[i]
			if c == '\\' && i+1 < len(body) {
				i++
				switch body[i] {
				case 'n':
					val.WriteByte('\n')
				default:
					val.WriteByte(body[i])
				}
				continue
			}
			if c == '"' {
				closed = true
				break
			}
			val.WriteByte(c)
		}
		if !closed {
			return fmt.Errorf("unterminated label value for %q", name)
		}
		if _, dup := dst[name]; dup {
			return fmt.Errorf("duplicate label %q", name)
		}
		dst[name] = val.String()
		body = body[i+1:]
		if len(body) > 0 {
			if body[0] != ',' {
				return fmt.Errorf("expected ',' between labels near %q", body)
			}
			body = body[1:]
		}
	}
	return nil
}

// parseValue parses a sample value, accepting the spelled-out specials.
func parseValue(s string) (float64, error) {
	switch s {
	case "+Inf", "Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	return strconv.ParseFloat(s, 64)
}

// sampleBelongsTo reports whether a sample name is legal inside a family.
func sampleBelongsTo(f *Family, sample string) bool {
	if sample == f.Name {
		return f.Type != "histogram" // a histogram has only suffixed series
	}
	if f.Type == "histogram" {
		for _, suf := range histogramSuffixes {
			if sample == f.Name+suf {
				return true
			}
		}
	}
	return false
}

// validateHistogram checks every (label-partitioned) series of a
// histogram family: buckets must be cumulative and monotone, the +Inf
// bucket mandatory and equal to _count.
func validateHistogram(f *Family) error {
	type series struct {
		buckets []Sample
		count   *Sample
		hasInf  bool
	}
	byKey := map[string]*series{}
	key := func(labels map[string]string) string {
		parts := make([]string, 0, len(labels))
		for k, v := range labels {
			if k == "le" {
				continue
			}
			parts = append(parts, k+"="+v)
		}
		sort.Strings(parts)
		return strings.Join(parts, ",")
	}
	for i := range f.Samples {
		s := f.Samples[i]
		k := key(s.Labels)
		sr := byKey[k]
		if sr == nil {
			sr = &series{}
			byKey[k] = sr
		}
		switch s.Name {
		case f.Name + "_bucket":
			le, ok := s.Labels["le"]
			if !ok {
				return fmt.Errorf("bucket sample without le label")
			}
			if le == "+Inf" {
				sr.hasInf = true
			}
			sr.buckets = append(sr.buckets, s)
		case f.Name + "_count":
			sr.count = &f.Samples[i]
		}
	}
	for k, sr := range byKey {
		if !sr.hasInf {
			return fmt.Errorf("series {%s}: missing +Inf bucket", k)
		}
		if sr.count == nil {
			return fmt.Errorf("series {%s}: missing _count", k)
		}
		prevLE := math.Inf(-1)
		prevCum := float64(-1)
		for _, b := range sr.buckets {
			le, err := parseValue(b.Labels["le"])
			if err != nil {
				return fmt.Errorf("series {%s}: bad le %q", k, b.Labels["le"])
			}
			if le <= prevLE {
				return fmt.Errorf("series {%s}: le bounds not ascending at %q", k, b.Labels["le"])
			}
			if b.Value < prevCum {
				return fmt.Errorf("series {%s}: bucket counts not monotone at le=%q (%v < %v)",
					k, b.Labels["le"], b.Value, prevCum)
			}
			prevLE, prevCum = le, b.Value
		}
		if last := sr.buckets[len(sr.buckets)-1]; last.Value != sr.count.Value {
			return fmt.Errorf("series {%s}: +Inf bucket %v != _count %v", k, last.Value, sr.count.Value)
		}
	}
	return nil
}

// validName checks the metric/label name charset.
func validName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}
