// Package pipeline is the staged-execution backbone of the XSDF
// framework: it turns the paper's module diagram (§3, Figure 3) into the
// program's actual control flow. A pipeline is a declared list of named
// stages run in order over a shared state value, with one uniform
// middleware layer applied around every stage:
//
//   - cooperative cancellation: the context is checked before each stage,
//     with a configurable tolerance predicate so the degradation ladder
//     can ride out an expired deadline instead of aborting between
//     modules;
//   - panic isolation: a panic escaping a stage (or fired by the
//     fault-injection seam) is boxed into an *xsdferrors.PanicError, so
//     one poisoned document becomes a typed per-document error instead of
//     a crashed process;
//   - fault injection: faultinject.StageStart fires before each stage,
//     giving chaos schedules a deterministic per-stage seam;
//   - timing: every stage is measured on the monotonic clock, and the
//     runner returns one Timing per attempted stage.
//
// Stages hold no per-document state of their own — everything mutable
// lives in the state value the caller threads through Run — so one Runner
// is built per framework and shared by every document, sequentially or
// across batch workers.
package pipeline

import (
	"context"
	"runtime/debug"
	"time"

	"repro/internal/faultinject"
	"repro/xsdferrors"
)

// Stage is one named unit of pipeline work over the shared state S. Run
// returns the number of items the stage worked over (nodes guarded,
// targets selected, ...) — the per-stage count surfaced next to its
// timing — and an error that stops the pipeline.
type Stage[S any] struct {
	Name string
	Run  func(ctx context.Context, state S) (items int, err error)
}

// Timing reports one attempted stage of a run. Failed marks the stage the
// run stopped at: either its Run returned an error (Duration and Items
// are real) or the cancellation check refused to start it (both zero).
type Timing struct {
	Stage    string
	Items    int
	Duration time.Duration
	Failed   bool
}

// Config tunes a Runner. The zero value checks the context strictly and
// times stages on time.Now.
type Config struct {
	// TolerateCtxErr, when non-nil, reports whether a non-nil context
	// error should not abort the pipeline between stages. The framework
	// uses it for the degradation-ladder deadline exception: with the
	// ladder on, an expired deadline is ridden out at the last rung
	// instead of aborting.
	TolerateCtxErr func(error) bool
	// Clock is the time source for stage timing (default time.Now, whose
	// readings carry the monotonic clock). It is deliberately not
	// faultinject.Now: injected clock skew should age deadline budgets,
	// not corrupt the instrumentation.
	Clock func() time.Time
	// OnStage, when non-nil, observes every stage that actually ran: it
	// fires after the stage returns, with the measured duration, the item
	// count, and whether the stage failed (error or boxed panic). Stages
	// refused by the pre-stage cancellation check are not observed — they
	// did no work and carry no duration. The hook receives the run's
	// context so an observer can attach the measurement to a request
	// trace; it must be concurrency-safe (one Runner is shared across
	// batch workers) and cheap (it sits on every stage boundary).
	OnStage func(ctx context.Context, stage string, items int, d time.Duration, failed bool)
}

// Runner executes a declared stage list. Build once with New and share
// freely: Run keeps all per-call state on the stack and in the caller's
// state value.
type Runner[S any] struct {
	cfg    Config
	stages []Stage[S]
}

// New builds a Runner over the declared stages, in execution order.
func New[S any](cfg Config, stages ...Stage[S]) *Runner[S] {
	if cfg.Clock == nil {
		cfg.Clock = time.Now
	}
	return &Runner[S]{cfg: cfg, stages: stages}
}

// Names lists the declared stage names in execution order.
func (r *Runner[S]) Names() []string {
	names := make([]string, len(r.stages))
	for i, st := range r.stages {
		names[i] = st.Name
	}
	return names
}

// Run executes the stages in order over state, applying the middleware
// around each one. It returns one Timing per attempted stage (a prefix of
// the declared list) and the first error. On error the last Timing entry
// is the stage that failed; the remaining stages never run. A stage panic
// surfaces as a *xsdferrors.PanicError return, not a panic.
func (r *Runner[S]) Run(ctx context.Context, state S) ([]Timing, error) {
	timings := make([]Timing, 0, len(r.stages))
	for _, st := range r.stages {
		if cerr := ctx.Err(); cerr != nil && !(r.cfg.TolerateCtxErr != nil && r.cfg.TolerateCtxErr(cerr)) {
			timings = append(timings, Timing{Stage: st.Name, Failed: true})
			return timings, xsdferrors.Canceled(cerr)
		}
		items, dur, err := r.runStage(ctx, st, state)
		timings = append(timings, Timing{Stage: st.Name, Items: items, Duration: dur, Failed: err != nil})
		if r.cfg.OnStage != nil {
			r.cfg.OnStage(ctx, st.Name, items, dur, err != nil)
		}
		if err != nil {
			return timings, err
		}
	}
	return timings, nil
}

// runStage executes one stage under the panic-recovery, fault-injection,
// and timing middleware.
func (r *Runner[S]) runStage(ctx context.Context, st Stage[S], state S) (items int, dur time.Duration, err error) {
	start := r.cfg.Clock()
	defer func() {
		dur = r.cfg.Clock().Sub(start)
		if v := recover(); v != nil {
			err = &xsdferrors.PanicError{Doc: -1, Value: v, Stack: debug.Stack()}
		}
	}()
	faultinject.StageStart(st.Name)
	items, err = st.Run(ctx, state)
	return items, dur, err
}
