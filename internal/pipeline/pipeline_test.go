package pipeline

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/xsdferrors"
)

// state is the shared run state of the test pipelines: an execution trace.
type state struct{ trace []string }

func traced(name string, items int, err error) Stage[*state] {
	return Stage[*state]{Name: name, Run: func(_ context.Context, s *state) (int, error) {
		s.trace = append(s.trace, name)
		return items, err
	}}
}

func TestStagesRunInDeclaredOrder(t *testing.T) {
	r := New(Config{}, traced("a", 1, nil), traced("b", 2, nil), traced("c", 3, nil))
	s := &state{}
	timings, err := r.Run(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	if got := fmt.Sprint(s.trace); got != "[a b c]" {
		t.Errorf("trace = %s", got)
	}
	if len(timings) != 3 {
		t.Fatalf("timings = %d, want 3", len(timings))
	}
	for i, want := range []Timing{{Stage: "a", Items: 1}, {Stage: "b", Items: 2}, {Stage: "c", Items: 3}} {
		if timings[i].Stage != want.Stage || timings[i].Items != want.Items || timings[i].Failed {
			t.Errorf("timings[%d] = %+v, want stage %s items %d ok", i, timings[i], want.Stage, want.Items)
		}
	}
	if got := fmt.Sprint(r.Names()); got != "[a b c]" {
		t.Errorf("Names = %s", got)
	}
}

func TestErrorStopsPipeline(t *testing.T) {
	boom := errors.New("boom")
	r := New(Config{}, traced("a", 1, nil), traced("b", 2, boom), traced("c", 3, nil))
	s := &state{}
	timings, err := r.Run(context.Background(), s)
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if got := fmt.Sprint(s.trace); got != "[a b]" {
		t.Errorf("trace = %s (stage c must not run)", got)
	}
	if len(timings) != 2 || !timings[1].Failed || timings[0].Failed {
		t.Errorf("timings = %+v, want failure marked on b only", timings)
	}
}

func TestStageTimingUsesClock(t *testing.T) {
	// A deterministic clock advancing 5ms per reading: each stage is
	// bracketed by two readings, so each Timing must report exactly 5ms.
	now := time.Unix(0, 0)
	r := New(Config{Clock: func() time.Time {
		now = now.Add(5 * time.Millisecond)
		return now
	}}, traced("a", 0, nil), traced("b", 0, nil))
	timings, err := r.Run(context.Background(), &state{})
	if err != nil {
		t.Fatal(err)
	}
	for _, tm := range timings {
		if tm.Duration != 5*time.Millisecond {
			t.Errorf("stage %s duration = %v, want 5ms", tm.Stage, tm.Duration)
		}
	}
}

func TestCancellationCheckedBeforeEachStage(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	r := New(Config{},
		traced("a", 0, nil),
		Stage[*state]{Name: "b", Run: func(_ context.Context, s *state) (int, error) {
			s.trace = append(s.trace, "b")
			cancel() // dies mid-run; c must never start
			return 0, nil
		}},
		traced("c", 0, nil))
	s := &state{}
	timings, err := r.Run(ctx, s)
	if !errors.Is(err, xsdferrors.ErrCanceled) || !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want ErrCanceled wrapping context.Canceled", err)
	}
	if got := fmt.Sprint(s.trace); got != "[a b]" {
		t.Errorf("trace = %s", got)
	}
	// The refused stage is recorded as failed with zero items/duration.
	last := timings[len(timings)-1]
	if last.Stage != "c" || !last.Failed || last.Items != 0 || last.Duration != 0 {
		t.Errorf("refused-stage timing = %+v", last)
	}
}

func TestTolerateCtxErrRidesOutDeadline(t *testing.T) {
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	r := New(Config{TolerateCtxErr: func(err error) bool {
		return errors.Is(err, context.DeadlineExceeded)
	}}, traced("a", 0, nil), traced("b", 0, nil))
	s := &state{}
	if _, err := r.Run(ctx, s); err != nil {
		t.Fatalf("tolerated deadline must not abort, got %v", err)
	}
	if got := fmt.Sprint(s.trace); got != "[a b]" {
		t.Errorf("trace = %s", got)
	}
	// The same predicate must still abort on explicit cancellation.
	cctx, ccancel := context.WithCancel(context.Background())
	ccancel()
	if _, err := r.Run(cctx, &state{}); !errors.Is(err, xsdferrors.ErrCanceled) {
		t.Fatalf("explicit cancellation must abort, got %v", err)
	}
}

func TestPanicBoxedIntoPanicError(t *testing.T) {
	r := New(Config{},
		traced("a", 0, nil),
		Stage[*state]{Name: "b", Run: func(context.Context, *state) (int, error) { panic("kaboom") }},
		traced("c", 0, nil))
	s := &state{}
	timings, err := r.Run(context.Background(), s)
	var pe *xsdferrors.PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %T %v, want *PanicError", err, err)
	}
	if pe.Doc != -1 || pe.Value != "kaboom" || len(pe.Stack) == 0 {
		t.Errorf("PanicError = doc %d value %v stack %d bytes", pe.Doc, pe.Value, len(pe.Stack))
	}
	if got := fmt.Sprint(s.trace); got != "[a]" {
		t.Errorf("trace = %s (c must not run after the panic)", got)
	}
	if last := timings[len(timings)-1]; last.Stage != "b" || !last.Failed {
		t.Errorf("panicking stage timing = %+v", last)
	}
}

func TestFaultSeamFiresPerStage(t *testing.T) {
	restore := faultinject.Install(faultinject.New(faultinject.Config{Seed: 1, StagePanicRate: 1}))
	defer restore()
	r := New(Config{}, traced("a", 0, nil))
	_, err := r.Run(context.Background(), &state{})
	var pe *xsdferrors.PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %T %v, want boxed injected panic", err, err)
	}
	ip, ok := pe.Value.(faultinject.InjectedPanic)
	if !ok {
		t.Fatalf("panic value %T, want InjectedPanic", pe.Value)
	}
	if ip.Point != faultinject.PointStage || ip.Stage != "a" {
		t.Errorf("injected panic = %+v, want PointStage at stage a", ip)
	}
}
