package sphere

import "math"

// VectorSim is a similarity function over sparse context vectors, returning
// values in [0, 1]. Cosine is the paper's default (footnote 10); Jaccard
// and Pearson are the alternatives it mentions.
//
// Vectors carry their dimensions sorted, so all three measures are branchy
// two-pointer merge-joins: no union map is built, nothing is hashed, and
// accumulation visits dimensions in ascending id order — a fixed order, so
// the non-associative float sums are bit-for-bit reproducible.
type VectorSim func(a, b Vector) float64

// Cosine returns the cosine similarity of a and b, 0 when either is empty.
func Cosine(a, b Vector) float64 {
	if len(a.Dims) == 0 || len(b.Dims) == 0 {
		return 0
	}
	var dot, na, nb float64
	i, j := 0, 0
	for i < len(a.Dims) && j < len(b.Dims) {
		da, db := a.Dims[i], b.Dims[j]
		switch {
		case da == db:
			wa, wb := a.Weights[i], b.Weights[j]
			dot += wa * wb
			na += wa * wa
			nb += wb * wb
			i++
			j++
		case da < db:
			wa := a.Weights[i]
			na += wa * wa
			i++
		default:
			wb := b.Weights[j]
			nb += wb * wb
			j++
		}
	}
	for ; i < len(a.Dims); i++ {
		wa := a.Weights[i]
		na += wa * wa
	}
	for ; j < len(b.Dims); j++ {
		wb := b.Weights[j]
		nb += wb * wb
	}
	if na == 0 || nb == 0 {
		return 0
	}
	v := dot / (math.Sqrt(na) * math.Sqrt(nb))
	if v > 1 { // guard against rounding
		return 1
	}
	return v
}

// Jaccard returns the weighted (Ruzicka) Jaccard similarity:
// sum(min)/sum(max) over the union of dimensions.
func Jaccard(a, b Vector) float64 {
	if len(a.Dims) == 0 || len(b.Dims) == 0 {
		return 0
	}
	var num, den float64
	i, j := 0, 0
	for i < len(a.Dims) && j < len(b.Dims) {
		da, db := a.Dims[i], b.Dims[j]
		switch {
		case da == db:
			wa, wb := a.Weights[i], b.Weights[j]
			num += math.Min(wa, wb)
			den += math.Max(wa, wb)
			i++
			j++
		case da < db:
			// Absent dim in b: min(wa, 0) = 0, max(wa, 0) = wa for the
			// non-negative weights of Definition 7; mirror the historical
			// math.Min/Max calls exactly in case of signed inputs.
			wa := a.Weights[i]
			num += math.Min(wa, 0)
			den += math.Max(wa, 0)
			i++
		default:
			wb := b.Weights[j]
			num += math.Min(0, wb)
			den += math.Max(0, wb)
			j++
		}
	}
	for ; i < len(a.Dims); i++ {
		wa := a.Weights[i]
		num += math.Min(wa, 0)
		den += math.Max(wa, 0)
	}
	for ; j < len(b.Dims); j++ {
		wb := b.Weights[j]
		num += math.Min(0, wb)
		den += math.Max(0, wb)
	}
	if den == 0 {
		return 0
	}
	return num / den
}

// Pearson maps the Pearson correlation coefficient of the two vectors over
// their union of dimensions onto [0, 1] via (r+1)/2, so it is usable as a
// similarity. Degenerate (zero-variance) inputs score 0.
func Pearson(a, b Vector) float64 {
	// First merge pass: union size and per-vector sums (absent dims
	// contribute 0 to the sums but count toward n).
	var sa, sb float64
	union := 0
	i, j := 0, 0
	for i < len(a.Dims) && j < len(b.Dims) {
		da, db := a.Dims[i], b.Dims[j]
		switch {
		case da == db:
			sa += a.Weights[i]
			sb += b.Weights[j]
			i++
			j++
		case da < db:
			sa += a.Weights[i]
			i++
		default:
			sb += b.Weights[j]
			j++
		}
		union++
	}
	for ; i < len(a.Dims); i++ {
		sa += a.Weights[i]
		union++
	}
	for ; j < len(b.Dims); j++ {
		sb += b.Weights[j]
		union++
	}
	n := float64(union)
	if n < 2 {
		return 0
	}
	ma, mb := sa/n, sb/n
	// Second merge pass: centered covariance and variances over the union.
	var cov, va, vb float64
	acc := func(wa, wb float64) {
		da, db := wa-ma, wb-mb
		cov += da * db
		va += da * da
		vb += db * db
	}
	i, j = 0, 0
	for i < len(a.Dims) && j < len(b.Dims) {
		da, db := a.Dims[i], b.Dims[j]
		switch {
		case da == db:
			acc(a.Weights[i], b.Weights[j])
			i++
			j++
		case da < db:
			acc(a.Weights[i], 0)
			i++
		default:
			acc(0, b.Weights[j])
			j++
		}
	}
	for ; i < len(a.Dims); i++ {
		acc(a.Weights[i], 0)
	}
	for ; j < len(b.Dims); j++ {
		acc(0, b.Weights[j])
	}
	if va == 0 || vb == 0 {
		return 0
	}
	r := cov / math.Sqrt(va*vb)
	return (r + 1) / 2
}
