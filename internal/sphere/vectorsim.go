package sphere

import (
	"math"
	"sort"
)

// VectorSim is a similarity function over sparse context vectors, returning
// values in [0, 1]. Cosine is the paper's default (footnote 10); Jaccard
// and Pearson are the alternatives it mentions.
//
// All three accumulate in sorted dimension order: floating-point addition
// is not associative, and Go's map iteration order is randomized, so naive
// accumulation would make scores differ across calls in the last bits —
// enough to flip exact ties and break the library's determinism guarantee.
type VectorSim func(a, b Vector) float64

// sortedDims returns the union of dimensions in sorted order.
func sortedDims(a, b Vector) []string {
	dims := make([]string, 0, len(a)+len(b))
	for l := range a {
		dims = append(dims, l)
	}
	for l := range b {
		if _, ok := a[l]; !ok {
			dims = append(dims, l)
		}
	}
	sort.Strings(dims)
	return dims
}

// Cosine returns the cosine similarity of a and b, 0 when either is empty.
func Cosine(a, b Vector) float64 {
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	var dot, na, nb float64
	for _, l := range sortedDims(a, b) {
		wa, wb := a[l], b[l]
		dot += wa * wb
		na += wa * wa
		nb += wb * wb
	}
	if na == 0 || nb == 0 {
		return 0
	}
	v := dot / (math.Sqrt(na) * math.Sqrt(nb))
	if v > 1 { // guard against rounding
		return 1
	}
	return v
}

// Jaccard returns the weighted (Ruzicka) Jaccard similarity:
// sum(min)/sum(max) over the union of dimensions.
func Jaccard(a, b Vector) float64 {
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	var num, den float64
	for _, l := range sortedDims(a, b) {
		wa, wb := a[l], b[l]
		num += math.Min(wa, wb)
		den += math.Max(wa, wb)
	}
	if den == 0 {
		return 0
	}
	return num / den
}

// Pearson maps the Pearson correlation coefficient of the two vectors over
// their union of dimensions onto [0, 1] via (r+1)/2, so it is usable as a
// similarity. Degenerate (zero-variance) inputs score 0.
func Pearson(a, b Vector) float64 {
	dims := sortedDims(a, b)
	n := float64(len(dims))
	if n < 2 {
		return 0
	}
	var sa, sb float64
	for _, l := range dims {
		sa += a[l]
		sb += b[l]
	}
	ma, mb := sa/n, sb/n
	var cov, va, vb float64
	for _, l := range dims {
		da, db := a[l]-ma, b[l]-mb
		cov += da * db
		va += da * da
		vb += db * db
	}
	if va == 0 || vb == 0 {
		return 0
	}
	r := cov / math.Sqrt(va*vb)
	return (r + 1) / 2
}
