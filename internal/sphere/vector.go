package sphere

import (
	"cmp"
	"slices"
	"sort"
)

// Vector is a sparse context vector in the dense-dimension representation
// of the integer-ID scoring core: Dims holds the distinct dimension ids in
// ascending order and Weights the matching weights. Similarity measures
// are merge-joins over the sorted dims — no map is built or hashed on the
// hot path.
//
// Dimension ids come from a Vocab: ids below Vocab.NumLabels() are labels
// known to the vocabulary (for *semnet.Network, its lemma set in sorted
// order, so integer order coincides with string order); ids at or above
// NumLabels() are labels unknown to the vocabulary, assigned per vector by
// sorted rank. Unknown dims are therefore only meaningful within the
// vector that assigned them — which suffices for disambiguation, where
// XML context vectors are compared exclusively against concept vectors
// whose dims are all known labels. Callers that need unknown labels
// comparable across vectors build them through a shared *Dict.
type Vector struct {
	Dims    []int32
	Weights []float64
}

// Len returns the number of non-zero dimensions.
func (v Vector) Len() int { return len(v.Dims) }

// WeightOf returns the weight at dimension dim, 0 when absent.
func (v Vector) WeightOf(dim int32) float64 {
	i, ok := slices.BinarySearch(v.Dims, dim)
	if !ok {
		return 0
	}
	return v.Weights[i]
}

// At returns the weight of a label resolved through the vocabulary the
// vector was built with, 0 when the label is unknown to it. Intended for
// tests and tools; the scoring core works on dims directly.
func (v Vector) At(voc Vocab, label string) float64 {
	dim, ok := voc.LabelID(label)
	if !ok {
		return 0
	}
	return v.WeightOf(dim)
}

// Clone returns a copy that does not alias the vector's backing arrays.
func (v Vector) Clone() Vector {
	return Vector{Dims: slices.Clone(v.Dims), Weights: slices.Clone(v.Weights)}
}

// Vocab resolves label strings to dense vector dimensions. *semnet.Network
// implements it over its lemma set; *Dict is the growable variant for
// callers whose labels exceed any network.
type Vocab interface {
	// LabelID returns the dimension of a known label.
	LabelID(label string) (int32, bool)
	// LabelName returns the label at a dimension, "" when out of range.
	LabelName(dim int32) string
	// NumLabels bounds the known dimensions: every known label id is in
	// [0, NumLabels).
	NumLabels() int
}

// Dict is a growable Vocab: unknown labels are interned on first use, so
// vectors built through one Dict share dimensions and stay comparable even
// for labels no network knows. The zero Dict is not usable; call NewDict.
// Dict is not safe for concurrent use.
type Dict struct {
	base  Vocab // optional frozen base vocabulary (may be nil)
	extra map[string]int32
	names []string // extra labels by (id - baseLen)
}

// NewDict returns a Dict layered over an optional base vocabulary.
func NewDict(base Vocab) *Dict {
	return &Dict{base: base, extra: make(map[string]int32)}
}

func (d *Dict) baseLen() int32 {
	if d.base == nil {
		return 0
	}
	return int32(d.base.NumLabels())
}

// LabelID resolves a label, interning it if new. ok is always true.
func (d *Dict) LabelID(label string) (int32, bool) {
	if d.base != nil {
		if id, ok := d.base.LabelID(label); ok {
			return id, true
		}
	}
	if id, ok := d.extra[label]; ok {
		return id, true
	}
	id := d.baseLen() + int32(len(d.names))
	d.extra[label] = id
	d.names = append(d.names, label)
	return id, true
}

// LabelName returns the label at a dimension, "" when out of range.
func (d *Dict) LabelName(dim int32) string {
	if d.base != nil && dim < d.baseLen() {
		return d.base.LabelName(dim)
	}
	i := int(dim - d.baseLen())
	if i < 0 || i >= len(d.names) {
		return ""
	}
	return d.names[i]
}

// NumLabels returns the current size of the label universe.
func (d *Dict) NumLabels() int { return int(d.baseLen()) + len(d.names) }

// dimWeight is one raw (dimension, structural weight) contribution before
// per-dimension folding.
type dimWeight struct {
	dim int32
	w   float64
}

// VecScratch holds the reusable buffers of vector construction. The
// returned Vector aliases the scratch, so it is valid until the next build
// through the same scratch; callers that retain vectors Clone them. The
// zero value is ready to use.
type VecScratch struct {
	pairs   []dimWeight
	unknown []string
	dims    []int32
	weights []float64
}

// resolveUnknown sorts and dedups the collected unknown labels so each can
// be assigned base+rank — an ordering that depends only on the label set,
// never on goroutine scheduling, keeping parallel and serial runs
// bit-identical.
func (s *VecScratch) resolveUnknown() {
	sort.Strings(s.unknown)
	s.unknown = slices.Compact(s.unknown)
}

func (s *VecScratch) unknownDim(base int32, label string) int32 {
	i, _ := slices.BinarySearch(s.unknown, label)
	return base + int32(i)
}

// fold stable-sorts the accumulated pairs by dimension and folds equal
// dims in insertion order (float addition is not associative; insertion
// order is the member order the map representation historically folded
// in), then scales every weight by 2/norm per Definition 7.
func (s *VecScratch) fold(norm float64) Vector {
	slices.SortStableFunc(s.pairs, func(a, b dimWeight) int { return cmp.Compare(a.dim, b.dim) })
	s.dims = s.dims[:0]
	s.weights = s.weights[:0]
	for _, p := range s.pairs {
		if n := len(s.dims); n > 0 && s.dims[n-1] == p.dim {
			s.weights[n-1] += p.w
		} else {
			s.dims = append(s.dims, p.dim)
			s.weights = append(s.weights, p.w)
		}
	}
	for i := range s.weights {
		s.weights[i] = 2 * s.weights[i] / norm
	}
	return Vector{Dims: s.dims, Weights: s.weights}
}

// VectorFromMembersInto builds the Definition 6–7 context vector from an
// already-computed sphere membership into reusable scratch buffers. When
// memberDims is non-nil it must have len(members) entries and receives the
// dimension assigned to each member's label (-1 for empty labels), letting
// callers recover per-member weights without re-resolving labels.
func VectorFromMembersInto(members []Member, d int, voc Vocab, s *VecScratch, memberDims []int32) Vector {
	base := int32(0)
	if voc != nil {
		base = int32(voc.NumLabels())
	}
	// Pass 1: collect the labels the vocabulary does not know; their dims
	// are assigned by sorted rank above base.
	s.unknown = s.unknown[:0]
	for _, m := range members {
		l := m.Node.Label
		if l == "" {
			continue
		}
		if voc == nil {
			s.unknown = append(s.unknown, l)
			continue
		}
		if _, ok := voc.LabelID(l); !ok {
			s.unknown = append(s.unknown, l)
		}
	}
	if len(s.unknown) > 0 {
		s.resolveUnknown()
	}
	// Pass 2: accumulate (dim, structural weight) in member order.
	s.pairs = s.pairs[:0]
	for i, m := range members {
		l := m.Node.Label
		if l == "" {
			if memberDims != nil {
				memberDims[i] = -1
			}
			continue
		}
		var dim int32
		if voc != nil {
			if id, ok := voc.LabelID(l); ok {
				dim = id
			} else {
				dim = s.unknownDim(base, l)
			}
		} else {
			dim = s.unknownDim(base, l)
		}
		if memberDims != nil {
			memberDims[i] = dim
		}
		s.pairs = append(s.pairs, dimWeight{dim: dim, w: Struct(m.Dist, d)})
	}
	return s.fold(float64(len(members) + 1))
}

// VectorFromMembers builds the Definition 6–7 context vector from an
// already-computed sphere membership, letting callers that need both the
// members and the vector (disambig.prepareContext) run the BFS once.
func VectorFromMembers(members []Member, d int, voc Vocab) Vector {
	var s VecScratch
	return VectorFromMembersInto(members, d, voc, &s, nil)
}
