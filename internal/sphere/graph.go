package sphere

import (
	"sort"

	"repro/internal/xmltree"
)

// GraphSphere is Sphere over the document *graph*: BFS additionally crosses
// the ID/IDREF hyperlink edges materialized by xmltree.ResolveLinks, so a
// referencing element and its anchor join each other's disambiguation
// contexts at distance 1. On documents without links it is identical to
// Sphere.
func GraphSphere(x *xmltree.Node, d int) []Member {
	dist := map[*xmltree.Node]int{x: 0}
	frontier := []*xmltree.Node{x}
	members := []Member{{Node: x, Dist: 0}}
	for depth := 1; depth <= d; depth++ {
		var next []*xmltree.Node
		for _, cur := range frontier {
			var adj []*xmltree.Node
			if cur.Parent != nil {
				adj = append(adj, cur.Parent)
			}
			adj = append(adj, cur.Children...)
			adj = append(adj, cur.Links...)
			for _, nb := range adj {
				if _, seen := dist[nb]; seen {
					continue
				}
				dist[nb] = depth
				members = append(members, Member{Node: nb, Dist: depth})
				next = append(next, nb)
			}
		}
		frontier = next
	}
	sort.Slice(members, func(i, j int) bool {
		if members[i].Dist != members[j].Dist {
			return members[i].Dist < members[j].Dist
		}
		return members[i].Node.Index < members[j].Node.Index
	})
	return members
}

// GraphContextVector builds the Definition 6–7 context vector over the
// link-aware sphere.
func GraphContextVector(x *xmltree.Node, d int) Vector {
	return vectorFromMembers(GraphSphere(x, d), d)
}
