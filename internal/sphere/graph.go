package sphere

import (
	"repro/internal/xmltree"
)

// GraphSphere is Sphere over the document *graph*: BFS additionally crosses
// the ID/IDREF hyperlink edges materialized by xmltree.ResolveLinks, so a
// referencing element and its anchor join each other's disambiguation
// contexts at distance 1. On documents without links it is identical to
// Sphere.
func GraphSphere(x *xmltree.Node, d int) []Member {
	var s Scratch
	return SphereInto(x, d, true, &s)
}

// GraphContextVector builds the Definition 6–7 context vector over the
// link-aware sphere.
func GraphContextVector(x *xmltree.Node, d int, voc Vocab) Vector {
	return VectorFromMembers(GraphSphere(x, d), d, voc)
}
