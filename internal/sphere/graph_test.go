package sphere

import (
	"testing"

	"repro/internal/xmltree"
)

func linkedTree(t *testing.T) *xmltree.Tree {
	t.Helper()
	doc := `<root><anchor id="a"><inner/></anchor><far><ref idref="a"/></far></root>`
	tr, err := xmltree.ParseString(doc, xmltree.DefaultParseOptions())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.ResolveLinks(); err != nil {
		t.Fatal(err)
	}
	for _, n := range tr.Nodes() {
		n.Label = n.Raw
	}
	return tr
}

func findNode(t *testing.T, tr *xmltree.Tree, label string) *xmltree.Node {
	t.Helper()
	for _, n := range tr.Nodes() {
		if n.Label == label {
			return n
		}
	}
	t.Fatalf("no node %q", label)
	return nil
}

func TestGraphSphereCrossesLinks(t *testing.T) {
	tr := linkedTree(t)
	ref := findNode(t, tr, "ref")
	// Tree sphere at d=1: parent "far" + attribute child only.
	plain := Sphere(ref, 1)
	for _, m := range plain {
		if m.Node.Label == "anchor" {
			t.Fatal("tree sphere must not cross links")
		}
	}
	// Graph sphere at d=1 reaches the anchor through the hyperlink.
	graph := GraphSphere(ref, 1)
	found := false
	for _, m := range graph {
		if m.Node.Label == "anchor" && m.Dist == 1 {
			found = true
		}
	}
	if !found {
		t.Fatalf("graph sphere missed the linked anchor: %v", graph)
	}
}

func TestGraphSphereEqualsSphereWithoutLinks(t *testing.T) {
	_, cast := figure6(t)
	a := Sphere(cast, 2)
	b := GraphSphere(cast, 2)
	if len(a) != len(b) {
		t.Fatalf("sizes differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("graph sphere differs on link-free tree")
		}
	}
}

func TestGraphContextVectorIncludesLinkedLabels(t *testing.T) {
	tr := linkedTree(t)
	ref := findNode(t, tr, "ref")
	voc := NewDict(nil)
	v := GraphContextVector(ref, 2, voc)
	if v.At(voc, "anchor") <= 0 || v.At(voc, "inner") <= 0 {
		t.Errorf("linked labels missing from vector: %v", v)
	}
	plain := ContextVector(ref, 2, voc)
	if plain.At(voc, "inner") != 0 {
		t.Error("tree vector should not see across the link")
	}
}
