package sphere

import (
	"container/heap"
	"sort"

	"repro/internal/xmltree"
)

// EdgeWeights parameterizes the alternative tree-node distance functions
// the paper lists as future work (§5): per-direction edge weights let the
// sphere expand asymmetrically toward ancestors vs. descendants (the
// direction-sensitive contexts of Mandreoli et al.'s VSD use the same
// idea).
type EdgeWeights struct {
	// Up is the cost of crossing an edge toward the parent.
	Up float64
	// Down is the cost of crossing an edge toward a child.
	Down float64
}

// UnitWeights is the classic edge-count distance (Up = Down = 1).
func UnitWeights() EdgeWeights { return EdgeWeights{Up: 1, Down: 1} }

// WeightedMember is a sphere member under a weighted distance.
type WeightedMember struct {
	Node *xmltree.Node
	Dist float64
}

type wmHeap []WeightedMember

func (h wmHeap) Len() int            { return len(h) }
func (h wmHeap) Less(i, j int) bool  { return h[i].Dist < h[j].Dist }
func (h wmHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *wmHeap) Push(x interface{}) { *h = append(*h, x.(WeightedMember)) }
func (h *wmHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// WeightedSphere returns all nodes whose weighted distance from x is at most
// radius, computed with Dijkstra's algorithm over the tree adjacency using
// the given per-direction edge weights. The center is included at distance
// 0. Results are ordered by distance, then preorder index.
func WeightedSphere(x *xmltree.Node, radius float64, w EdgeWeights) []WeightedMember {
	dist := map[*xmltree.Node]float64{x: 0}
	h := &wmHeap{{Node: x, Dist: 0}}
	var members []WeightedMember
	done := map[*xmltree.Node]bool{}
	for h.Len() > 0 {
		cur := heap.Pop(h).(WeightedMember)
		if done[cur.Node] {
			continue
		}
		done[cur.Node] = true
		members = append(members, cur)
		relax := func(nb *xmltree.Node, cost float64) {
			nd := cur.Dist + cost
			if nd > radius {
				return
			}
			if old, seen := dist[nb]; !seen || nd < old {
				dist[nb] = nd
				heap.Push(h, WeightedMember{Node: nb, Dist: nd})
			}
		}
		if cur.Node.Parent != nil {
			relax(cur.Node.Parent, w.Up)
		}
		for _, c := range cur.Node.Children {
			relax(c, w.Down)
		}
	}
	sort.Slice(members, func(i, j int) bool {
		if members[i].Dist != members[j].Dist {
			return members[i].Dist < members[j].Dist
		}
		return members[i].Node.Index < members[j].Node.Index
	})
	return members
}

// WeightedContextVector builds a context vector from a weighted sphere,
// generalizing Definitions 6–7: structural proximity becomes
// 1 - dist/(radius+1), keeping the farthest members at non-null weight.
func WeightedContextVector(x *xmltree.Node, radius float64, w EdgeWeights, voc Vocab) Vector {
	members := WeightedSphere(x, radius, w)
	base := int32(0)
	if voc != nil {
		base = int32(voc.NumLabels())
	}
	var s VecScratch
	for _, m := range members {
		if l := m.Node.Label; l != "" {
			if voc == nil {
				s.unknown = append(s.unknown, l)
			} else if _, ok := voc.LabelID(l); !ok {
				s.unknown = append(s.unknown, l)
			}
		}
	}
	if len(s.unknown) > 0 {
		s.resolveUnknown()
	}
	for _, m := range members {
		l := m.Node.Label
		if l == "" {
			continue
		}
		var dim int32
		if voc != nil {
			if id, ok := voc.LabelID(l); ok {
				dim = id
			} else {
				dim = s.unknownDim(base, l)
			}
		} else {
			dim = s.unknownDim(base, l)
		}
		s.pairs = append(s.pairs, dimWeight{dim: dim, w: 1 - m.Dist/(radius+1)})
	}
	return s.fold(float64(len(members) + 1))
}
