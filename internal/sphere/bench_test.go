package sphere

import (
	"fmt"
	"testing"

	"repro/internal/wordnet"
	"repro/internal/xmltree"
)

// benchTree builds a balanced tree with the given fan-out and depth.
func benchTree(fanout, depth int) *xmltree.Tree {
	var build func(level int) *xmltree.Node
	id := 0
	build = func(level int) *xmltree.Node {
		n := &xmltree.Node{Label: fmt.Sprintf("l%d", id%17), Kind: xmltree.Element}
		id++
		if level < depth {
			for i := 0; i < fanout; i++ {
				n.AddChild(build(level + 1))
			}
		}
		return n
	}
	return xmltree.New(build(0))
}

func BenchmarkSphereRadius(b *testing.B) {
	tr := benchTree(4, 6) // ~5.4k nodes
	center := tr.Node(tr.Len() / 2)
	for _, d := range []int{1, 2, 3, 5} {
		b.Run(fmt.Sprintf("d=%d", d), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if len(Sphere(center, d)) == 0 {
					b.Fatal("empty sphere")
				}
			}
		})
	}
}

func BenchmarkContextVector(b *testing.B) {
	tr := benchTree(4, 6)
	center := tr.Node(tr.Len() / 2)
	voc := NewDict(nil)
	for _, d := range []int{1, 3} {
		b.Run(fmt.Sprintf("d=%d", d), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if ContextVector(center, d, voc).Len() == 0 {
					b.Fatal("empty vector")
				}
			}
		})
	}
}

func BenchmarkWeightedSphere(b *testing.B) {
	tr := benchTree(4, 6)
	center := tr.Node(tr.Len() / 2)
	w := EdgeWeights{Up: 1.5, Down: 0.75}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(WeightedSphere(center, 3, w)) == 0 {
			b.Fatal("empty sphere")
		}
	}
}

func BenchmarkConceptVector(b *testing.B) {
	net := wordnet.Default()
	dc, ok := net.Dense("cast.n.01")
	if !ok {
		b.Fatal("cast.n.01 missing")
	}
	for _, d := range []int{1, 2, 3} {
		b.Run(fmt.Sprintf("d=%d", d), func(b *testing.B) {
			b.ReportAllocs()
			var s ConceptScratch
			for i := 0; i < b.N; i++ {
				if ConceptVectorInto(net, dc, d, &s).Len() == 0 {
					b.Fatal("empty vector")
				}
			}
		})
	}
}

func BenchmarkCosine(b *testing.B) {
	tr := benchTree(4, 6)
	voc := NewDict(nil)
	a := ContextVector(tr.Node(3), 3, voc)
	c := ContextVector(tr.Node(tr.Len()/2), 3, voc)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Cosine(a, c)
	}
}
