package sphere

import (
	"testing"

	"repro/internal/xmltree"
)

func TestWeightedSphereUnitEqualsSphere(t *testing.T) {
	_, cast := figure6(t)
	unit := WeightedSphere(cast, 2, UnitWeights())
	plain := Sphere(cast, 2)
	if len(unit) != len(plain) {
		t.Fatalf("unit-weight sphere size %d != %d", len(unit), len(plain))
	}
	for i := range unit {
		if unit[i].Node != plain[i].Node || unit[i].Dist != float64(plain[i].Dist) {
			t.Errorf("member %d differs: %v vs %v", i, unit[i], plain[i])
		}
	}
}

func TestWeightedSphereDirectional(t *testing.T) {
	_, cast := figure6(t)
	// Cheap downward edges, expensive upward: radius 1.0 reaches both
	// children levels but not the parent.
	members := WeightedSphere(cast, 1.0, EdgeWeights{Up: 2, Down: 0.5})
	labels := map[string]bool{}
	for _, m := range members {
		labels[m.Node.Label] = true
	}
	if !labels["star"] || !labels["stewart"] || !labels["kelly"] {
		t.Errorf("descendants missing: %v", labels)
	}
	if labels["picture"] {
		t.Error("expensive upward edge crossed")
	}
}

func TestWeightedSphereCenterOnly(t *testing.T) {
	_, cast := figure6(t)
	members := WeightedSphere(cast, 0.4, EdgeWeights{Up: 1, Down: 1})
	if len(members) != 1 || members[0].Node != cast {
		t.Errorf("radius < min edge weight should yield only the center: %v", members)
	}
}

func TestWeightedContextVector(t *testing.T) {
	_, cast := figure6(t)
	voc := NewDict(nil)
	v := WeightedContextVector(cast, 2, UnitWeights(), voc)
	plain := ContextVector(cast, 2, voc)
	if v.Len() != plain.Len() {
		t.Fatalf("dims differ: %v vs %v", v, plain)
	}
	for i, dim := range plain.Dims {
		w := plain.Weights[i]
		if diff := v.WeightOf(dim) - w; diff > 1e-9 || diff < -1e-9 {
			t.Errorf("weight[%s] = %f, want %f", voc.LabelName(dim), v.WeightOf(dim), w)
		}
	}
}

func TestWeightedSphereDeterministic(t *testing.T) {
	doc := `<a><b><c/><d/></b><e><f/></e></a>`
	tr, err := xmltree.ParseString(doc, xmltree.DefaultParseOptions())
	if err != nil {
		t.Fatal(err)
	}
	x := tr.Node(1)
	a := WeightedSphere(x, 3, EdgeWeights{Up: 1.5, Down: 0.5})
	b := WeightedSphere(x, 3, EdgeWeights{Up: 1.5, Down: 0.5})
	if len(a) != len(b) {
		t.Fatal("nondeterministic size")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("nondeterministic order")
		}
	}
}
