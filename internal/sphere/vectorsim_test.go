package sphere

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

// vecLit builds a Vector from a label -> weight literal through a shared
// vocabulary, so vectors built with the same voc stay comparable.
func vecLit(voc *Dict, m map[string]float64) Vector {
	labels := make([]string, 0, len(m))
	for l := range m {
		labels = append(labels, l)
	}
	sort.Strings(labels)
	var s VecScratch
	for _, l := range labels {
		id, _ := voc.LabelID(l)
		s.pairs = append(s.pairs, dimWeight{dim: id, w: m[l]})
	}
	// fold sorts by dim and scales by 2/norm; use norm=2 for identity.
	return s.fold(2).Clone()
}

func TestCosineBasics(t *testing.T) {
	voc := NewDict(nil)
	a := vecLit(voc, map[string]float64{"x": 1, "y": 0})
	if got := Cosine(a, a); math.Abs(got-1) > 1e-9 {
		t.Errorf("Cosine(a, a) = %f", got)
	}
	b := vecLit(voc, map[string]float64{"z": 1})
	if got := Cosine(a, b); got != 0 {
		t.Errorf("orthogonal Cosine = %f", got)
	}
	if got := Cosine(a, Vector{}); got != 0 {
		t.Errorf("Cosine with empty = %f", got)
	}
	// Scale invariance.
	c := vecLit(voc, map[string]float64{"x": 0.5, "y": 0.25})
	c2 := vecLit(voc, map[string]float64{"x": 1, "y": 0.5})
	if math.Abs(Cosine(a, c)-Cosine(a, c2)) > 1e-9 {
		t.Error("Cosine not scale invariant")
	}
}

func TestJaccardBasics(t *testing.T) {
	voc := NewDict(nil)
	a := vecLit(voc, map[string]float64{"x": 1, "y": 2})
	if got := Jaccard(a, a); math.Abs(got-1) > 1e-9 {
		t.Errorf("Jaccard(a, a) = %f", got)
	}
	if got := Jaccard(a, vecLit(voc, map[string]float64{"z": 1})); got != 0 {
		t.Errorf("disjoint Jaccard = %f", got)
	}
	// Partial overlap: min-sum/max-sum = 1/(1+2+1) with b = {x:1, z:1}.
	b := vecLit(voc, map[string]float64{"x": 1, "z": 1})
	want := 1.0 / 4
	if got := Jaccard(a, b); math.Abs(got-want) > 1e-9 {
		t.Errorf("Jaccard = %f, want %f", got, want)
	}
}

func TestPearsonBasics(t *testing.T) {
	voc := NewDict(nil)
	a := vecLit(voc, map[string]float64{"x": 1, "y": 2, "z": 3})
	if got := Pearson(a, a); math.Abs(got-1) > 1e-9 {
		t.Errorf("Pearson(a, a) = %f", got)
	}
	// Anti-correlated vectors map toward 0 under (r+1)/2.
	b := vecLit(voc, map[string]float64{"x": 3, "y": 2, "z": 1})
	if got := Pearson(a, b); got > 0.01 {
		t.Errorf("anti-correlated Pearson = %f, want ~0", got)
	}
	// Degenerate inputs.
	if got := Pearson(vecLit(voc, map[string]float64{"x": 1}), vecLit(voc, map[string]float64{"x": 2})); got != 0 {
		t.Errorf("single-dim Pearson = %f", got)
	}
}

// TestVectorSimsRange: all three similarities stay in [0, 1] and are
// symmetric on arbitrary sparse vectors.
func TestVectorSimsRange(t *testing.T) {
	mk := func(voc *Dict, ws []float64) Vector {
		m := map[string]float64{}
		for i, w := range ws {
			if i >= 6 {
				break
			}
			if w < 0 {
				w = -w
			}
			w = math.Mod(w, 10)
			if w > 0 {
				m[string(rune('a'+i))] = w
			}
		}
		return vecLit(voc, m)
	}
	f := func(aw, bw []float64) bool {
		voc := NewDict(nil)
		a, b := mk(voc, aw), mk(voc, bw)
		for _, sim := range []VectorSim{Cosine, Jaccard, Pearson} {
			v := sim(a, b)
			if v < 0 || v > 1 || math.IsNaN(v) {
				return false
			}
			if math.Abs(v-sim(b, a)) > 1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestMergeJoinMatchesMapFold cross-checks the merge-join similarities
// against a straightforward map-based reference on random sparse vectors.
func TestMergeJoinMatchesMapFold(t *testing.T) {
	ref := func(kind int, a, b map[string]float64) float64 {
		union := map[string]struct{}{}
		for l := range a {
			union[l] = struct{}{}
		}
		for l := range b {
			union[l] = struct{}{}
		}
		dims := make([]string, 0, len(union))
		for l := range union {
			dims = append(dims, l)
		}
		sort.Strings(dims)
		switch kind {
		case 0: // cosine
			if len(a) == 0 || len(b) == 0 {
				return 0
			}
			var dot, na, nb float64
			for _, l := range dims {
				dot += a[l] * b[l]
				na += a[l] * a[l]
				nb += b[l] * b[l]
			}
			if na == 0 || nb == 0 {
				return 0
			}
			v := dot / (math.Sqrt(na) * math.Sqrt(nb))
			return math.Min(v, 1)
		case 1: // jaccard
			if len(a) == 0 || len(b) == 0 {
				return 0
			}
			var num, den float64
			for _, l := range dims {
				num += math.Min(a[l], b[l])
				den += math.Max(a[l], b[l])
			}
			if den == 0 {
				return 0
			}
			return num / den
		default: // pearson
			n := float64(len(dims))
			if n < 2 {
				return 0
			}
			var sa, sb float64
			for _, l := range dims {
				sa += a[l]
				sb += b[l]
			}
			ma, mb := sa/n, sb/n
			var cov, va, vb float64
			for _, l := range dims {
				da, db := a[l]-ma, b[l]-mb
				cov += da * db
				va += da * da
				vb += db * db
			}
			if va == 0 || vb == 0 {
				return 0
			}
			return (cov/math.Sqrt(va*vb) + 1) / 2
		}
	}
	mkMap := func(ws []float64) map[string]float64 {
		m := map[string]float64{}
		for i, w := range ws {
			if i >= 8 {
				break
			}
			if w < 0 {
				w = -w
			}
			w = math.Mod(w, 10)
			if w > 0 {
				m[string(rune('a'+i%8))] = w
			}
		}
		return m
	}
	f := func(aw, bw []float64) bool {
		am, bm := mkMap(aw), mkMap(bw)
		voc := NewDict(nil)
		av, bv := vecLit(voc, am), vecLit(voc, bm)
		sims := []VectorSim{Cosine, Jaccard, Pearson}
		for kind, sim := range sims {
			if math.Abs(sim(av, bv)-ref(kind, am, bm)) > 1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
