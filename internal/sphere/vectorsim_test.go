package sphere

import (
	"math"
	"testing"
	"testing/quick"
)

func TestCosineBasics(t *testing.T) {
	a := Vector{"x": 1, "y": 0}
	if got := Cosine(a, a); math.Abs(got-1) > 1e-9 {
		t.Errorf("Cosine(a, a) = %f", got)
	}
	b := Vector{"z": 1}
	if got := Cosine(a, b); got != 0 {
		t.Errorf("orthogonal Cosine = %f", got)
	}
	if got := Cosine(a, nil); got != 0 {
		t.Errorf("Cosine with empty = %f", got)
	}
	// Scale invariance.
	c := Vector{"x": 0.5, "y": 0.25}
	c2 := Vector{"x": 1, "y": 0.5}
	if math.Abs(Cosine(a, c)-Cosine(a, c2)) > 1e-9 {
		t.Error("Cosine not scale invariant")
	}
}

func TestJaccardBasics(t *testing.T) {
	a := Vector{"x": 1, "y": 2}
	if got := Jaccard(a, a); math.Abs(got-1) > 1e-9 {
		t.Errorf("Jaccard(a, a) = %f", got)
	}
	if got := Jaccard(a, Vector{"z": 1}); got != 0 {
		t.Errorf("disjoint Jaccard = %f", got)
	}
	// Partial overlap: min-sum/max-sum = 1/(1+2+1) with b = {x:1, z:1}.
	b := Vector{"x": 1, "z": 1}
	want := 1.0 / 4
	if got := Jaccard(a, b); math.Abs(got-want) > 1e-9 {
		t.Errorf("Jaccard = %f, want %f", got, want)
	}
}

func TestPearsonBasics(t *testing.T) {
	a := Vector{"x": 1, "y": 2, "z": 3}
	if got := Pearson(a, a); math.Abs(got-1) > 1e-9 {
		t.Errorf("Pearson(a, a) = %f", got)
	}
	// Anti-correlated vectors map toward 0 under (r+1)/2.
	b := Vector{"x": 3, "y": 2, "z": 1}
	if got := Pearson(a, b); got > 0.01 {
		t.Errorf("anti-correlated Pearson = %f, want ~0", got)
	}
	// Degenerate inputs.
	if got := Pearson(Vector{"x": 1}, Vector{"x": 2}); got != 0 {
		t.Errorf("single-dim Pearson = %f", got)
	}
}

// TestVectorSimsRange: all three similarities stay in [0, 1] and are
// symmetric on arbitrary sparse vectors.
func TestVectorSimsRange(t *testing.T) {
	mk := func(ws []float64) Vector {
		v := Vector{}
		for i, w := range ws {
			if i >= 6 {
				break
			}
			if w < 0 {
				w = -w
			}
			w = math.Mod(w, 10)
			if w > 0 {
				v[string(rune('a'+i))] = w
			}
		}
		return v
	}
	f := func(aw, bw []float64) bool {
		a, b := mk(aw), mk(bw)
		for _, sim := range []VectorSim{Cosine, Jaccard, Pearson} {
			v := sim(a, b)
			if v < 0 || v > 1 || math.IsNaN(v) {
				return false
			}
			if math.Abs(v-sim(b, a)) > 1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
