// Package sphere implements the sphere neighborhood context model of §3.4:
// XML rings and spheres (Definitions 4–5), weighted context vectors
// (Definitions 6–7), and their semantic-network analogues used by
// context-based disambiguation (§3.5.2).
//
// Convention: following the paper's worked example (Figure 7, vector
// V1(T[2])), the sphere S_d(x) includes its center x at distance 0; the
// center's label therefore appears as a vector dimension with maximal
// structural proximity. (The paper's V2(T[2]) numbers use |S|+1 = 8, an
// off-by-one inconsistent with V1; we follow the V1 arithmetic, which also
// keeps weights in [0,1]. See EXPERIMENTS.md.)
package sphere

import (
	"slices"
	"sort"

	"repro/internal/semnet"
	"repro/internal/xmltree"
)

// Member is one node of a sphere neighborhood together with its distance
// from the center.
type Member struct {
	Node *xmltree.Node
	Dist int
}

// Ring returns R_d(x): the nodes located exactly at distance d from x
// (Definition 4), in preorder. It walks the BFS once and keeps only the
// final frontier instead of materializing and sorting the whole sphere.
func Ring(x *xmltree.Node, d int) []*xmltree.Node {
	if d == 0 {
		return []*xmltree.Node{x}
	}
	seen := map[*xmltree.Node]struct{}{x: {}}
	frontier := []*xmltree.Node{x}
	for depth := 1; depth <= d; depth++ {
		var next []*xmltree.Node
		for _, cur := range frontier {
			expand(cur, false, func(nb *xmltree.Node) {
				if _, dup := seen[nb]; dup {
					return
				}
				seen[nb] = struct{}{}
				next = append(next, nb)
			})
		}
		frontier = next
	}
	sort.Slice(frontier, func(i, j int) bool { return frontier[i].Index < frontier[j].Index })
	return frontier
}

// expand visits the sphere-adjacent nodes of cur in the canonical order
// (parent, children, then — when links is set — hyperlink anchors). Tree
// and graph spheres, rings, and vectors all deduplicate through this one
// adjacency, so the two BFS variants cannot drift apart.
func expand(cur *xmltree.Node, links bool, visit func(*xmltree.Node)) {
	if cur.Parent != nil {
		visit(cur.Parent)
	}
	for _, c := range cur.Children {
		visit(c)
	}
	if links {
		for _, l := range cur.Links {
			visit(l)
		}
	}
}

// Sphere returns S_d(x): all nodes within distance d of x, center included
// at distance 0 (Definition 5). Members are ordered by distance, then
// preorder index, making iteration deterministic.
func Sphere(x *xmltree.Node, d int) []Member {
	var s Scratch
	return SphereInto(x, d, false, &s)
}

// Scratch holds the reusable buffers of the sphere BFS so a caller scoring
// many nodes (the disambiguation hot loop) performs no steady-state
// allocation: the visited map is cleared and reused, member and frontier
// slices keep their capacity. The zero value is ready to use. Not safe for
// concurrent use; each worker owns its own Scratch.
type Scratch struct {
	dist     map[*xmltree.Node]int
	frontier []*xmltree.Node
	next     []*xmltree.Node
	members  []Member
}

// SphereInto is Sphere (links=false) or GraphSphere (links=true) into
// reusable scratch buffers. The returned slice aliases the scratch and is
// valid until the next call with the same Scratch.
func SphereInto(x *xmltree.Node, d int, links bool, s *Scratch) []Member {
	if s.dist == nil {
		s.dist = make(map[*xmltree.Node]int)
	} else {
		clear(s.dist)
	}
	s.dist[x] = 0
	s.frontier = append(s.frontier[:0], x)
	s.members = append(s.members[:0], Member{Node: x, Dist: 0})
	for depth := 1; depth <= d; depth++ {
		s.next = s.next[:0]
		for _, cur := range s.frontier {
			// Same adjacency and order as expand (parent, children,
			// links), written out so the hot loop allocates no closures.
			if p := cur.Parent; p != nil {
				s.visit(p, depth)
			}
			for _, c := range cur.Children {
				s.visit(c, depth)
			}
			if links {
				for _, l := range cur.Links {
					s.visit(l, depth)
				}
			}
		}
		s.frontier, s.next = s.next, s.frontier
	}
	slices.SortFunc(s.members, func(a, b Member) int {
		if a.Dist != b.Dist {
			return a.Dist - b.Dist
		}
		return a.Node.Index - b.Node.Index
	})
	return s.members
}

// visit adds nb to the sphere at the given depth unless already seen.
func (s *Scratch) visit(nb *xmltree.Node, depth int) {
	if _, seen := s.dist[nb]; seen {
		return
	}
	s.dist[nb] = depth
	s.members = append(s.members, Member{Node: nb, Dist: depth})
	s.next = append(s.next, nb)
}

// Struct returns the structural proximity factor of Definition 7 (Eq. 7):
//
//	Struct(x_i, S_d(x)) = 1 - Dist(x, x_i)/(d+1)  ∈ [1/(d+1), 1]
func Struct(dist, d int) float64 {
	return 1 - float64(dist)/float64(d+1)
}

// ContextVector builds V_d(x), the weighted context vector of target node x
// with sphere radius d (Definitions 6–7). Dimensions are the distinct node
// labels in S_d(x) resolved through voc; the weight of label ℓ is
//
//	w(ℓ) = 2·Freq(ℓ, S_d(x)) / (|S_d(x)| + 1)
//
// with Freq the structural-proximity-weighted occurrence count (Eq. 6).
func ContextVector(x *xmltree.Node, d int, voc Vocab) Vector {
	return VectorFromMembers(Sphere(x, d), d, voc)
}

// ConceptSphereMember is one concept of a semantic-network sphere with its
// hop distance from the center concept.
type ConceptSphereMember struct {
	ID   semnet.ConceptID
	Dist int
}

// ConceptSphere returns the sphere neighborhood S_d(c) of a concept in the
// semantic network: rings are built using the semantic relations connecting
// concepts (hypernyms, hyponyms, meronyms, holonyms, ...), in contrast with
// the XML structural containment relations (§3.5.2).
func ConceptSphere(net *semnet.Network, c semnet.ConceptID, d int) []ConceptSphereMember {
	nb := net.Neighborhood(c, d)
	out := make([]ConceptSphereMember, 0, len(nb))
	for id, dist := range nb {
		out = append(out, ConceptSphereMember{ID: id, Dist: dist})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Dist != out[j].Dist {
			return out[i].Dist < out[j].Dist
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// ConceptScratch holds the reusable buffers of dense concept-sphere BFS
// and vector construction: stamped visited/distance arrays sized to the
// network, emission-order member lists, and the shared vector fold
// buffers. The zero value is ready to use; it sizes itself to the network
// on first use and is not safe for concurrent use.
type ConceptScratch struct {
	stamp    uint32
	visitedA []uint32
	distA    []int32
	visitedB []uint32
	distB    []int32
	queue    []int32
	idsA     []int32 // BFS emission order (dist ascending, frontier order)
	idsB     []int32
	vec      VecScratch
}

func (s *ConceptScratch) ensure(n int) {
	if len(s.visitedA) < n {
		s.visitedA = make([]uint32, n)
		s.distA = make([]int32, n)
		s.visitedB = make([]uint32, n)
		s.distB = make([]int32, n)
	}
	s.stamp++
	if s.stamp == 0 { // stamp wrapped: invalidate all stale marks
		clear(s.visitedA)
		clear(s.visitedB)
		s.stamp = 1
	}
}

// bfs runs the dense neighborhood walk from c over all relation kinds,
// stamping visited/dist and appending reached ids (center included at
// distance 0) to ids in emission order — distance ascending, and within a
// ring the deterministic frontier order fixed by the frozen edge lists.
func (s *ConceptScratch) bfs(net *semnet.Network, c semnet.DenseID, d int, visited []uint32, dist []int32, ids []int32) []int32 {
	visited[c] = s.stamp
	dist[c] = 0
	ids = append(ids[:0], c)
	s.queue = append(s.queue[:0], c)
	head := 0
	for head < len(s.queue) {
		cur := s.queue[head]
		head++
		nd := dist[cur] + 1
		if nd > int32(d) {
			break
		}
		for _, e := range net.EdgesDense(cur) {
			if visited[e.To] == s.stamp {
				continue
			}
			visited[e.To] = s.stamp
			dist[e.To] = nd
			ids = append(ids, e.To)
			s.queue = append(s.queue, e.To)
		}
	}
	return ids
}

// ConceptVectorInto builds V_d(s) — the context vector of a concept
// (sense) in the semantic network, same weight formula as ContextVector
// with concept primary labels as dimensions — into reusable scratch. The
// result aliases the scratch.
func ConceptVectorInto(net *semnet.Network, c semnet.DenseID, d int, s *ConceptScratch) Vector {
	s.ensure(net.Index().Len())
	s.idsA = s.bfs(net, c, d, s.visitedA, s.distA, s.idsA)
	s.vec.pairs = s.vec.pairs[:0]
	for _, id := range s.idsA {
		s.vec.pairs = append(s.vec.pairs, dimWeight{
			dim: net.LabelDense(id),
			w:   Struct(int(s.distA[id]), d),
		})
	}
	return s.vec.fold(float64(len(s.idsA) + 1))
}

// CombinedConceptVectorInto builds V_d(s_p, s_q) for the compound-label
// special case (Eq. 12): the sphere neighborhoods of the individual senses
// are unioned (keeping the smaller distance on overlap) before vector
// construction. The result aliases the scratch.
func CombinedConceptVectorInto(net *semnet.Network, p, q semnet.DenseID, d int, s *ConceptScratch) Vector {
	s.ensure(net.Index().Len())
	s.idsA = s.bfs(net, p, d, s.visitedA, s.distA, s.idsA)
	s.idsB = s.bfs(net, q, d, s.visitedB, s.distB, s.idsB)
	s.vec.pairs = s.vec.pairs[:0]
	size := 0
	for _, id := range s.idsA {
		dist := s.distA[id]
		if s.visitedB[id] == s.stamp && s.distB[id] < dist {
			dist = s.distB[id]
		}
		s.vec.pairs = append(s.vec.pairs, dimWeight{dim: net.LabelDense(id), w: Struct(int(dist), d)})
		size++
	}
	for _, id := range s.idsB {
		if s.visitedA[id] == s.stamp {
			continue // already merged above with min distance
		}
		s.vec.pairs = append(s.vec.pairs, dimWeight{dim: net.LabelDense(id), w: Struct(int(s.distB[id]), d)})
		size++
	}
	return s.vec.fold(float64(size + 1))
}

// ConceptVector builds V_d(s) as an owned vector; unknown concept ids
// yield the empty vector.
func ConceptVector(net *semnet.Network, c semnet.ConceptID, d int) Vector {
	dc, ok := net.Dense(c)
	if !ok {
		return Vector{}
	}
	var s ConceptScratch
	return ConceptVectorInto(net, dc, d, &s).Clone()
}

// CombinedConceptVector builds V_d(s_p, s_q) as an owned vector; unknown
// concept ids yield the empty vector.
func CombinedConceptVector(net *semnet.Network, p, q semnet.ConceptID, d int) Vector {
	dp, okp := net.Dense(p)
	dq, okq := net.Dense(q)
	if !okp || !okq {
		return Vector{}
	}
	var s ConceptScratch
	return CombinedConceptVectorInto(net, dp, dq, d, &s).Clone()
}
