// Package sphere implements the sphere neighborhood context model of §3.4:
// XML rings and spheres (Definitions 4–5), weighted context vectors
// (Definitions 6–7), and their semantic-network analogues used by
// context-based disambiguation (§3.5.2).
//
// Convention: following the paper's worked example (Figure 7, vector
// V1(T[2])), the sphere S_d(x) includes its center x at distance 0; the
// center's label therefore appears as a vector dimension with maximal
// structural proximity. (The paper's V2(T[2]) numbers use |S|+1 = 8, an
// off-by-one inconsistent with V1; we follow the V1 arithmetic, which also
// keeps weights in [0,1]. See EXPERIMENTS.md.)
package sphere

import (
	"sort"

	"repro/internal/semnet"
	"repro/internal/xmltree"
)

// Member is one node of a sphere neighborhood together with its distance
// from the center.
type Member struct {
	Node *xmltree.Node
	Dist int
}

// Ring returns R_d(x): the nodes located exactly at distance d from x
// (Definition 4), in preorder. It walks the BFS once and keeps only the
// final frontier instead of materializing and sorting the whole sphere.
func Ring(x *xmltree.Node, d int) []*xmltree.Node {
	if d == 0 {
		return []*xmltree.Node{x}
	}
	seen := map[*xmltree.Node]struct{}{x: {}}
	frontier := []*xmltree.Node{x}
	for depth := 1; depth <= d; depth++ {
		var next []*xmltree.Node
		for _, cur := range frontier {
			expand(cur, false, func(nb *xmltree.Node) {
				if _, dup := seen[nb]; dup {
					return
				}
				seen[nb] = struct{}{}
				next = append(next, nb)
			})
		}
		frontier = next
	}
	sort.Slice(frontier, func(i, j int) bool { return frontier[i].Index < frontier[j].Index })
	return frontier
}

// expand visits the sphere-adjacent nodes of cur in the canonical order
// (parent, children, then — when links is set — hyperlink anchors). Tree
// and graph spheres, rings, and vectors all deduplicate through this one
// adjacency, so the two BFS variants cannot drift apart.
func expand(cur *xmltree.Node, links bool, visit func(*xmltree.Node)) {
	if cur.Parent != nil {
		visit(cur.Parent)
	}
	for _, c := range cur.Children {
		visit(c)
	}
	if links {
		for _, l := range cur.Links {
			visit(l)
		}
	}
}

// Sphere returns S_d(x): all nodes within distance d of x, center included
// at distance 0 (Definition 5). Members are ordered by distance, then
// preorder index, making iteration deterministic.
func Sphere(x *xmltree.Node, d int) []Member {
	return bfsSphere(x, d, false)
}

// bfsSphere is the shared breadth-first walk behind Sphere and GraphSphere.
func bfsSphere(x *xmltree.Node, d int, links bool) []Member {
	dist := map[*xmltree.Node]int{x: 0}
	frontier := []*xmltree.Node{x}
	members := []Member{{Node: x, Dist: 0}}
	for depth := 1; depth <= d; depth++ {
		var next []*xmltree.Node
		for _, cur := range frontier {
			expand(cur, links, func(nb *xmltree.Node) {
				if _, seen := dist[nb]; seen {
					return
				}
				dist[nb] = depth
				members = append(members, Member{Node: nb, Dist: depth})
				next = append(next, nb)
			})
		}
		frontier = next
	}
	sort.Slice(members, func(i, j int) bool {
		if members[i].Dist != members[j].Dist {
			return members[i].Dist < members[j].Dist
		}
		return members[i].Node.Index < members[j].Node.Index
	})
	return members
}

// Vector is a sparse context vector: dimension label -> weight.
type Vector map[string]float64

// Struct returns the structural proximity factor of Definition 7 (Eq. 7):
//
//	Struct(x_i, S_d(x)) = 1 - Dist(x, x_i)/(d+1)  ∈ [1/(d+1), 1]
func Struct(dist, d int) float64 {
	return 1 - float64(dist)/float64(d+1)
}

// ContextVector builds V_d(x), the weighted context vector of target node x
// with sphere radius d (Definitions 6–7). Dimensions are the distinct node
// labels in S_d(x); the weight of label ℓ is
//
//	w(ℓ) = 2·Freq(ℓ, S_d(x)) / (|S_d(x)| + 1)
//
// with Freq the structural-proximity-weighted occurrence count (Eq. 6).
func ContextVector(x *xmltree.Node, d int) Vector {
	return VectorFromMembers(Sphere(x, d), d)
}

// VectorFromMembers builds the Definition 6–7 context vector from an
// already-computed sphere membership, letting callers that need both the
// members and the vector (disambig.prepareContext) run the BFS once.
func VectorFromMembers(members []Member, d int) Vector {
	freq := make(Vector, len(members))
	for _, m := range members {
		if m.Node.Label == "" {
			continue
		}
		freq[m.Node.Label] += Struct(m.Dist, d)
	}
	norm := float64(len(members) + 1)
	v := make(Vector, len(freq))
	for l, f := range freq {
		v[l] = 2 * f / norm
	}
	return v
}

// ConceptSphereMember is one concept of a semantic-network sphere with its
// hop distance from the center concept.
type ConceptSphereMember struct {
	ID   semnet.ConceptID
	Dist int
}

// ConceptSphere returns the sphere neighborhood S_d(c) of a concept in the
// semantic network: rings are built using the semantic relations connecting
// concepts (hypernyms, hyponyms, meronyms, holonyms, ...), in contrast with
// the XML structural containment relations (§3.5.2).
func ConceptSphere(net *semnet.Network, c semnet.ConceptID, d int) []ConceptSphereMember {
	nb := net.Neighborhood(c, d)
	out := make([]ConceptSphereMember, 0, len(nb))
	for id, dist := range nb {
		out = append(out, ConceptSphereMember{ID: id, Dist: dist})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Dist != out[j].Dist {
			return out[i].Dist < out[j].Dist
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// ConceptVector builds V_d(s): the context vector of a concept (sense) in
// the semantic network, using the same weight formula as ContextVector with
// concept primary labels as dimensions.
func ConceptVector(net *semnet.Network, c semnet.ConceptID, d int) Vector {
	members := ConceptSphere(net, c, d)
	freq := make(Vector, len(members))
	for _, m := range members {
		cn := net.Concept(m.ID)
		if cn == nil {
			continue
		}
		freq[cn.Label()] += Struct(m.Dist, d)
	}
	norm := float64(len(members) + 1)
	v := make(Vector, len(freq))
	for l, f := range freq {
		v[l] = 2 * f / norm
	}
	return v
}

// CombinedConceptVector builds V_d(s_p, s_q) for the compound-label special
// case (Eq. 12): the sphere neighborhoods of the individual senses are
// unioned (keeping the smaller distance on overlap) before vector
// construction.
func CombinedConceptVector(net *semnet.Network, p, q semnet.ConceptID, d int) Vector {
	union := net.Neighborhood(p, d)
	for id, dist := range net.Neighborhood(q, d) {
		if cur, ok := union[id]; !ok || dist < cur {
			union[id] = dist
		}
	}
	// Accumulate in sorted order: float addition is not associative, and
	// weight construction must be bit-for-bit deterministic.
	ids := make([]semnet.ConceptID, 0, len(union))
	for id := range union {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	freq := make(Vector, len(union))
	for _, id := range ids {
		cn := net.Concept(id)
		if cn == nil {
			continue
		}
		freq[cn.Label()] += Struct(union[id], d)
	}
	norm := float64(len(union) + 1)
	v := make(Vector, len(freq))
	for l, f := range freq {
		v[l] = 2 * f / norm
	}
	return v
}
