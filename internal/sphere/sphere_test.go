package sphere

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/semnet"
	"repro/internal/xmltree"
)

// figure6 builds the tree of the paper's Figure 6 and returns it with node
// T[2] ("cast"), the example's sphere center.
func figure6(t *testing.T) (*xmltree.Tree, *xmltree.Node) {
	t.Helper()
	doc := `<Films><Picture><Cast><Star>Stewart</Star><Star>Kelly</Star></Cast><Plot/></Picture></Films>`
	tr, err := xmltree.ParseString(doc, xmltree.DefaultParseOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range tr.Nodes() { // lower-case labels like lingproc would
		n.Label = lower(n.Raw)
	}
	cast := tr.Node(2)
	if cast.Label != "cast" {
		t.Fatalf("T[2] = %s", cast.Label)
	}
	return tr, cast
}

func lower(s string) string {
	b := []byte(s)
	for i, c := range b {
		if c >= 'A' && c <= 'Z' {
			b[i] = c + 32
		}
	}
	return string(b)
}

func TestRing1MatchesPaper(t *testing.T) {
	_, cast := figure6(t)
	// §3.4.1: R1(T[2]) = {picture, star, star}.
	ring := Ring(cast, 1)
	if len(ring) != 3 {
		t.Fatalf("|R1| = %d, want 3", len(ring))
	}
	labels := map[string]int{}
	for _, n := range ring {
		labels[n.Label]++
	}
	if labels["picture"] != 1 || labels["star"] != 2 {
		t.Errorf("R1 labels = %v", labels)
	}
}

func TestSphere2MatchesPaper(t *testing.T) {
	_, cast := figure6(t)
	// S2(T[2]) = center + R1{picture, star, star} + R2{films, stewart,
	// kelly, plot}.
	members := Sphere(cast, 2)
	if len(members) != 8 {
		t.Fatalf("|S2| = %d, want 8 (center included)", len(members))
	}
	distOf := map[string]int{}
	for _, m := range members {
		distOf[m.Node.Label] = m.Dist
	}
	want := map[string]int{"cast": 0, "picture": 1, "star": 1, "films": 2, "stewart": 2, "kelly": 2, "plot": 2}
	for l, d := range want {
		if distOf[l] != d {
			t.Errorf("dist(%s) = %d, want %d", l, distOf[l], d)
		}
	}
}

func TestSphereOrderingDeterministic(t *testing.T) {
	_, cast := figure6(t)
	a := Sphere(cast, 2)
	b := Sphere(cast, 2)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("Sphere not deterministic")
		}
	}
	for i := 1; i < len(a); i++ {
		if a[i].Dist < a[i-1].Dist {
			t.Fatal("Sphere not ordered by distance")
		}
	}
}

func TestStructFactor(t *testing.T) {
	// Eq. 7: Struct = 1 - dist/(d+1).
	if got := Struct(0, 1); got != 1 {
		t.Errorf("Struct(0,1) = %f", got)
	}
	if got := Struct(1, 1); got != 0.5 {
		t.Errorf("Struct(1,1) = %f", got)
	}
	if got := Struct(2, 2); math.Abs(got-1.0/3) > 1e-9 {
		t.Errorf("Struct(2,2) = %f", got)
	}
	// Farthest ring keeps a non-null weight (the paper's d+1 denominator).
	if Struct(3, 3) <= 0 {
		t.Error("farthest ring weight must stay positive")
	}
}

// TestContextVectorFigure7 reproduces V1(T[2]) of Figure 7 exactly:
// cast 0.4, picture 0.2, star 0.4.
func TestContextVectorFigure7(t *testing.T) {
	_, cast := figure6(t)
	voc := NewDict(nil)
	v := ContextVector(cast, 1, voc)
	want := map[string]float64{"cast": 0.4, "picture": 0.2, "star": 0.4}
	if v.Len() != len(want) {
		t.Fatalf("V1 dims = %v", v)
	}
	for l, w := range want {
		if math.Abs(v.At(voc, l)-w) > 1e-9 {
			t.Errorf("V1[%s] = %.4f, want %.4f", l, v.At(voc, l), w)
		}
	}
}

// TestContextVectorRadius2 checks the d=2 vector under the center-inclusive
// convention (|S2| = 8): weights 2·Freq/9.
func TestContextVectorRadius2(t *testing.T) {
	_, cast := figure6(t)
	voc := NewDict(nil)
	v := ContextVector(cast, 2, voc)
	want := map[string]float64{
		"cast":    2.0 / 9,           // Struct(0,2)=1
		"picture": 2 * (2.0 / 3) / 9, // Struct(1,2)=2/3
		"star":    2 * (4.0 / 3) / 9, // two at Struct 2/3
		"films":   2 * (1.0 / 3) / 9,
		"stewart": 2 * (1.0 / 3) / 9,
		"kelly":   2 * (1.0 / 3) / 9,
		"plot":    2 * (1.0 / 3) / 9,
	}
	for l, w := range want {
		if math.Abs(v.At(voc, l)-w) > 1e-9 {
			t.Errorf("V2[%s] = %.4f, want %.4f", l, v.At(voc, l), w)
		}
	}
}

// TestAssumption5And6 checks the two context-vector assumptions: closer
// nodes weigh more (5); repeated labels weigh more (6).
func TestAssumption5And6(t *testing.T) {
	_, cast := figure6(t)
	voc := NewDict(nil)
	v := ContextVector(cast, 2, voc)
	if !(v.At(voc, "star") > v.At(voc, "plot")) {
		t.Error("Assumption 5 violated: closer star should outweigh farther plot")
	}
	if !(v.At(voc, "star") > v.At(voc, "picture")) {
		t.Error("Assumption 6 violated: repeated star should outweigh single picture")
	}
}

func TestWeightsInUnitRange(t *testing.T) {
	f := func(shape []uint8, center uint8, d uint8) bool {
		tr := randomTree(shape)
		x := tr.Node(int(center) % tr.Len())
		radius := 1 + int(d)%4
		for _, w := range ContextVector(x, radius, NewDict(nil)).Weights {
			if w <= 0 || w > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestSphereSizeMonotone: the sphere never shrinks as d grows and is
// bounded by the tree size.
func TestSphereSizeMonotone(t *testing.T) {
	f := func(shape []uint8, center uint8) bool {
		tr := randomTree(shape)
		x := tr.Node(int(center) % tr.Len())
		prev := 0
		for d := 0; d <= 6; d++ {
			n := len(Sphere(x, d))
			if n < prev || n > tr.Len() {
				return false
			}
			prev = n
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func randomTree(shape []uint8) *xmltree.Tree {
	root := &xmltree.Node{Label: "r", Kind: xmltree.Element}
	nodes := []*xmltree.Node{root}
	for i, b := range shape {
		if len(nodes) >= 48 {
			break
		}
		parent := nodes[int(b)%len(nodes)]
		n := &xmltree.Node{Label: string(rune('a' + i%8)), Kind: xmltree.Element}
		parent.AddChild(n)
		nodes = append(nodes, n)
	}
	return xmltree.New(root)
}

// ---- concept spheres ----

func miniNet(t *testing.T) *semnet.Network {
	t.Helper()
	b := semnet.NewBuilder()
	b.AddConcept("a.n.01", "alpha gloss", 10, "alpha")
	b.AddConcept("b.n.01", "beta gloss", 8, "beta")
	b.AddConcept("c.n.01", "gamma gloss", 6, "gamma")
	b.AddConcept("d.n.01", "delta gloss", 4, "delta")
	b.IsA("b.n.01", "a.n.01")
	b.IsA("c.n.01", "b.n.01")
	b.PartOf("d.n.01", "b.n.01")
	n, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestConceptSphere(t *testing.T) {
	n := miniNet(t)
	members := ConceptSphere(n, "c.n.01", 1)
	if len(members) != 2 { // center + b
		t.Fatalf("|S1(c)| = %d: %v", len(members), members)
	}
	members2 := ConceptSphere(n, "c.n.01", 2)
	if len(members2) != 4 { // + a, d through b
		t.Fatalf("|S2(c)| = %d: %v", len(members2), members2)
	}
}

func TestConceptVectorDimensions(t *testing.T) {
	n := miniNet(t)
	v := ConceptVector(n, "c.n.01", 2)
	for _, dim := range []string{"gamma", "beta", "alpha", "delta"} {
		if v.At(n, dim) <= 0 {
			t.Errorf("dimension %q missing: %v", dim, v)
		}
	}
	// Closer concept outweighs farther.
	if !(v.At(n, "beta") > v.At(n, "alpha")) {
		t.Error("distance weighting violated in concept vector")
	}
}

func TestCombinedConceptVector(t *testing.T) {
	n := miniNet(t)
	v := CombinedConceptVector(n, "c.n.01", "d.n.01", 1)
	// Union of both 1-spheres: c, b (from c), d, b (from d) -> dims
	// gamma, beta, delta.
	for _, dim := range []string{"gamma", "beta", "delta"} {
		if v.At(n, dim) <= 0 {
			t.Errorf("dimension %q missing: %v", dim, v)
		}
	}
	// The overlapping member (b) keeps its minimal distance.
	single := ConceptVector(n, "c.n.01", 1)
	if v.At(n, "beta") <= 0 || single.At(n, "beta") <= 0 {
		t.Error("expected beta in both vectors")
	}
}
