package simmeasure

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/semnet"
	"repro/internal/wordnet"
)

func testNet(t *testing.T) *semnet.Network {
	t.Helper()
	b := semnet.NewBuilder()
	b.AddConcept("entity.n.01", "that which exists", 100, "entity")
	b.AddConcept("person.n.01", "a human being regarded as an individual", 60, "person")
	b.AddConcept("object.n.01", "a tangible and visible thing", 50, "object")
	b.AddConcept("performer.n.01", "an entertainer who performs for an audience", 20, "performer")
	b.AddConcept("actor.n.01", "a performer who acts in a play or film", 10, "actor")
	b.AddConcept("star.n.02", "an actor who plays a principal role in a play or film", 8, "star")
	b.AddConcept("rock.n.01", "a lump of hard consolidated mineral matter", 12, "rock", "stone")
	b.IsA("person.n.01", "entity.n.01")
	b.IsA("object.n.01", "entity.n.01")
	b.IsA("performer.n.01", "person.n.01")
	b.IsA("actor.n.01", "performer.n.01")
	b.IsA("star.n.02", "performer.n.01")
	b.IsA("rock.n.01", "object.n.01")
	n, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestEdgeWuPalmer(t *testing.T) {
	n := testNet(t)
	// actor (depth 4) and star (depth 4) share performer (depth 3):
	// 2*3/(4+4) = 0.75.
	if got := Edge(n, "actor.n.01", "star.n.02"); math.Abs(got-0.75) > 1e-9 {
		t.Errorf("Edge(actor, star) = %.4f, want 0.75", got)
	}
	// actor vs rock: LCS entity (depth 1), depths 4 and 3: 2/(4+3).
	if got := Edge(n, "actor.n.01", "rock.n.01"); math.Abs(got-2.0/7) > 1e-9 {
		t.Errorf("Edge(actor, rock) = %.4f, want %.4f", got, 2.0/7)
	}
	if got := Edge(n, "actor.n.01", "actor.n.01"); got != 1 {
		t.Errorf("Edge(x, x) = %f", got)
	}
}

func TestNodeICLin(t *testing.T) {
	n := testNet(t)
	sibling := NodeIC(n, "actor.n.01", "star.n.02")
	distant := NodeIC(n, "actor.n.01", "rock.n.01")
	if !(sibling > distant) {
		t.Errorf("Lin: sibling %.4f should exceed distant %.4f", sibling, distant)
	}
	if sibling <= 0 || sibling > 1 {
		t.Errorf("Lin out of range: %f", sibling)
	}
	if got := NodeIC(n, "star.n.02", "star.n.02"); got != 1 {
		t.Errorf("Lin(x, x) = %f", got)
	}
}

func TestGlossOverlap(t *testing.T) {
	n := testNet(t)
	// actor's and star's glosses share the phrase "in a play or film".
	related := Gloss(n, "actor.n.01", "star.n.02")
	unrelated := Gloss(n, "actor.n.01", "rock.n.01")
	if !(related > unrelated) {
		t.Errorf("gloss: related %.4f should exceed unrelated %.4f", related, unrelated)
	}
	if related <= 0 || related >= 1 {
		t.Errorf("gloss out of range: %f", related)
	}
	if got := Gloss(n, "rock.n.01", "rock.n.01"); got != 1 {
		t.Errorf("Gloss(x, x) = %f", got)
	}
}

func TestWeightsValidate(t *testing.T) {
	if err := EqualWeights().Validate(); err != nil {
		t.Errorf("EqualWeights invalid: %v", err)
	}
	if err := (Weights{Edge: 0.5, Node: 0.5, Gloss: 0.5}).Validate(); err == nil {
		t.Error("sum > 1 should fail")
	}
	if err := (Weights{Edge: -1, Node: 2}).Validate(); err == nil {
		t.Error("negative weight should fail")
	}
	for _, w := range []Weights{EdgeOnly(), NodeOnly(), GlossOnly()} {
		if err := w.Validate(); err != nil {
			t.Errorf("%+v invalid: %v", w, err)
		}
	}
}

func TestWeightsNormalize(t *testing.T) {
	w := Weights{Edge: 2, Node: 1, Gloss: 1}.Normalize()
	if math.Abs(w.Edge-0.5) > 1e-9 || math.Abs(w.Node-0.25) > 1e-9 {
		t.Errorf("Normalize = %+v", w)
	}
	if got := (Weights{}).Normalize(); got != EqualWeights() {
		t.Errorf("zero weights should normalize to equal, got %+v", got)
	}
}

func TestMeasureCombinationAndCache(t *testing.T) {
	n := testNet(t)
	m := New(n, EqualWeights())
	s1 := m.Sim("actor.n.01", "star.n.02")
	s2 := m.Sim("star.n.02", "actor.n.01") // symmetric, cached
	if s1 != s2 {
		t.Errorf("Sim not symmetric: %f vs %f", s1, s2)
	}
	want := (Edge(n, "actor.n.01", "star.n.02") +
		NodeIC(n, "actor.n.01", "star.n.02") +
		Gloss(n, "actor.n.01", "star.n.02")) / 3
	if math.Abs(s1-want) > 1e-9 {
		t.Errorf("combined = %f, want %f", s1, want)
	}
	if m.Sim("actor.n.01", "actor.n.01") != 1 {
		t.Error("Sim(x,x) != 1")
	}
}

func TestMeasureSingleComponents(t *testing.T) {
	n := testNet(t)
	if got := New(n, EdgeOnly()).Sim("actor.n.01", "star.n.02"); math.Abs(got-0.75) > 1e-9 {
		t.Errorf("edge-only Sim = %f", got)
	}
	gOnly := New(n, GlossOnly()).Sim("actor.n.01", "star.n.02")
	if math.Abs(gOnly-Gloss(n, "actor.n.01", "star.n.02")) > 1e-9 {
		t.Errorf("gloss-only Sim = %f", gOnly)
	}
}

func TestLongestCommonRun(t *testing.T) {
	a := []string{"x", "play", "or", "film", "y"}
	b := []string{"play", "or", "film"}
	ai, bi, l := longestCommonRun(a, b)
	if l != 3 || ai != 1 || bi != 0 {
		t.Errorf("longestCommonRun = (%d, %d, %d)", ai, bi, l)
	}
	if _, _, l := longestCommonRun(nil, b); l != 0 {
		t.Error("empty input should yield 0")
	}
}

func TestPhraseOverlapQuadratic(t *testing.T) {
	// One 2-run scores 4; two isolated words score 2.
	if got := phraseOverlap([]string{"a", "b"}, []string{"a", "b"}); got != 4 {
		t.Errorf("run of 2 = %f, want 4", got)
	}
	if got := phraseOverlap([]string{"a", "x", "b"}, []string{"a", "y", "b"}); got != 2 {
		t.Errorf("two singles = %f, want 2", got)
	}
	if got := phraseOverlap([]string{"a"}, []string{"b"}); got != 0 {
		t.Errorf("disjoint = %f, want 0", got)
	}
}

// TestAllMeasuresInRangeOnRealLexicon sweeps the embedded lexicon: every
// pairwise similarity over a sample must be in [0, 1] and symmetric.
func TestAllMeasuresInRangeOnRealLexicon(t *testing.T) {
	net := wordnet.Default()
	ids := net.Concepts()
	sample := ids
	if len(sample) > 60 {
		sample = sample[:60]
	}
	m := New(net, EqualWeights())
	for _, a := range sample {
		for _, b := range sample {
			v := m.Sim(a, b)
			if v < 0 || v > 1 {
				t.Fatalf("Sim(%s, %s) = %f out of range", a, b, v)
			}
			if v != m.Sim(b, a) {
				t.Fatalf("Sim(%s, %s) asymmetric", a, b)
			}
		}
	}
}

// TestSimPropertyRandomPairs: on the synthetic generator, all measures stay
// in range and self-similarity is maximal.
func TestSimPropertyRandomPairs(t *testing.T) {
	net, err := wordnet.Generate(wordnet.GenerateConfig{Seed: 7, Concepts: 120, Lemmas: 40, MaxBranch: 5, PartEvery: 6})
	if err != nil {
		t.Fatal(err)
	}
	ids := net.Concepts()
	f := func(i, j uint16) bool {
		a := ids[int(i)%len(ids)]
		b := ids[int(j)%len(ids)]
		for _, v := range []float64{Edge(net, a, b), NodeIC(net, a, b), Gloss(net, a, b)} {
			if v < 0 || v > 1 || math.IsNaN(v) {
				return false
			}
		}
		return Edge(net, a, a) == 1 && NodeIC(net, a, a) == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 250}); err != nil {
		t.Error(err)
	}
}
