package simmeasure

import (
	"testing"

	"repro/internal/semnet"
	"repro/internal/wordnet"
)

var benchPairs = [][2]semnet.ConceptID{
	{"actor.n.01", "star.n.02"},
	{"cast.n.01", "picture.n.02"},
	{"book.n.01", "author.n.01"},
	{"state.n.01", "city.n.01"},
	{"head.n.01", "line.n.08"},
}

func BenchmarkEdge(b *testing.B) {
	net := wordnet.Default()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := benchPairs[i%len(benchPairs)]
		Edge(net, p[0], p[1])
	}
}

func BenchmarkNodeIC(b *testing.B) {
	net := wordnet.Default()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := benchPairs[i%len(benchPairs)]
		NodeIC(net, p[0], p[1])
	}
}

func BenchmarkGloss(b *testing.B) {
	net := wordnet.Default()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := benchPairs[i%len(benchPairs)]
		Gloss(net, p[0], p[1])
	}
}

func BenchmarkCombinedCold(b *testing.B) {
	net := wordnet.Default()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := New(net, EqualWeights()) // fresh cache each iteration
		p := benchPairs[i%len(benchPairs)]
		m.Sim(p[0], p[1])
	}
}

func BenchmarkCombinedCached(b *testing.B) {
	net := wordnet.Default()
	m := New(net, EqualWeights())
	for _, p := range benchPairs {
		m.Sim(p[0], p[1]) // warm the cache
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := benchPairs[i%len(benchPairs)]
		m.Sim(p[0], p[1])
	}
}
