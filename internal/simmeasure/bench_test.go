package simmeasure

import (
	"testing"

	"repro/internal/semnet"
	"repro/internal/wordnet"
)

var benchPairs = [][2]semnet.ConceptID{
	{"actor.n.01", "star.n.02"},
	{"cast.n.01", "picture.n.02"},
	{"book.n.01", "author.n.01"},
	{"state.n.01", "city.n.01"},
	{"head.n.01", "line.n.08"},
}

func BenchmarkEdge(b *testing.B) {
	net := wordnet.Default()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := benchPairs[i%len(benchPairs)]
		Edge(net, p[0], p[1])
	}
}

func BenchmarkNodeIC(b *testing.B) {
	net := wordnet.Default()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := benchPairs[i%len(benchPairs)]
		NodeIC(net, p[0], p[1])
	}
}

func BenchmarkGloss(b *testing.B) {
	net := wordnet.Default()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := benchPairs[i%len(benchPairs)]
		Gloss(net, p[0], p[1])
	}
}

func BenchmarkCombinedCold(b *testing.B) {
	net := wordnet.Default()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := New(net, EqualWeights()) // fresh cache each iteration
		p := benchPairs[i%len(benchPairs)]
		m.Sim(p[0], p[1])
	}
}

func BenchmarkCombinedCached(b *testing.B) {
	net := wordnet.Default()
	m := New(net, EqualWeights())
	for _, p := range benchPairs {
		m.Sim(p[0], p[1]) // warm the cache
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := benchPairs[i%len(benchPairs)]
		m.Sim(p[0], p[1])
	}
}

// warmMeasure returns a Measure over the embedded lexicon with every
// pairwise similarity of the sample precomputed, plus the sampled ids in
// both string and dense form.
func warmMeasure(tb testing.TB, sample int) (*Measure, []semnet.ConceptID, []semnet.DenseID) {
	tb.Helper()
	net := wordnet.Default()
	ids := net.Concepts()
	if len(ids) > sample {
		ids = ids[:sample]
	}
	dense := make([]semnet.DenseID, len(ids))
	for i, id := range ids {
		d, ok := net.Dense(id)
		if !ok {
			tb.Fatalf("no dense id for %s", id)
		}
		dense[i] = d
	}
	m := New(net, EqualWeights())
	for _, a := range ids {
		for _, b := range ids {
			m.Sim(a, b)
		}
	}
	return m, ids, dense
}

// TestWarmSimLookupAllocationFree pins the shard-fix goal: once a pair is
// cached, Sim and SimDense perform zero heap allocations per lookup — the
// packed int-pair key and two-multiply shard mix replaced the per-lookup
// maphash hasher and string conversions of the string-keyed cache.
func TestWarmSimLookupAllocationFree(t *testing.T) {
	m, ids, dense := warmMeasure(t, 40)
	allocs := testing.AllocsPerRun(100, func() {
		for i := range ids {
			for j := range ids {
				m.Sim(ids[i], ids[j])
			}
		}
	})
	if allocs != 0 {
		t.Errorf("warm Sim sweep allocates %.1f times, want 0", allocs)
	}
	allocs = testing.AllocsPerRun(100, func() {
		for i := range dense {
			for j := range dense {
				m.SimDense(dense[i], dense[j])
			}
		}
	})
	if allocs != 0 {
		t.Errorf("warm SimDense sweep allocates %.1f times, want 0", allocs)
	}
}

// BenchmarkSimDenseWarm measures a warm cache hit on the dense fast path
// used by the disambiguation inner loop.
func BenchmarkSimDenseWarm(b *testing.B) {
	m, _, dense := warmMeasure(b, 40)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.SimDense(dense[i%len(dense)], dense[(i*7+3)%len(dense)])
	}
}
