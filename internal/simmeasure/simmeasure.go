// Package simmeasure implements the three families of semantic similarity
// measures used by XSDF's concept-based disambiguation (Definition 9):
//
//   - Sim_Edge — the edge-based measure of Wu & Palmer [59];
//   - Sim_Node — the node-based information-content measure of Lin [27],
//     which requires the weighted network S̄N (concept frequencies);
//   - Sim_Gloss — a normalized extension of the extended gloss overlap of
//     Banerjee & Pedersen [6].
//
// The combined measure is their weighted sum with w_Edge+w_Node+w_Gloss = 1.
package simmeasure

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"repro/internal/semnet"
)

// Weights holds the non-negative combination weights of Definition 9.
type Weights struct {
	Edge  float64
	Node  float64
	Gloss float64
}

// EqualWeights returns the configuration used in the paper's experiments
// (w_Edge = w_Node = w_Gloss = 1/3; footnote 12).
func EqualWeights() Weights { return Weights{Edge: 1.0 / 3, Node: 1.0 / 3, Gloss: 1.0 / 3} }

// EdgeOnly, NodeOnly, and GlossOnly are single-measure configurations used
// by the ablation benchmarks.
func EdgeOnly() Weights  { return Weights{Edge: 1} }
func NodeOnly() Weights  { return Weights{Node: 1} }
func GlossOnly() Weights { return Weights{Gloss: 1} }

// Validate checks the Definition 9 constraints: weights non-negative and
// summing to 1 (within floating-point tolerance).
func (w Weights) Validate() error {
	if w.Edge < 0 || w.Node < 0 || w.Gloss < 0 {
		return fmt.Errorf("simmeasure: negative weight %+v", w)
	}
	if s := w.Edge + w.Node + w.Gloss; math.Abs(s-1) > 1e-9 {
		return fmt.Errorf("simmeasure: weights sum to %g, want 1", s)
	}
	return nil
}

// Normalize rescales the weights to sum to 1, leaving all-zero weights as
// the equal configuration.
func (w Weights) Normalize() Weights {
	s := w.Edge + w.Node + w.Gloss
	if s <= 0 {
		return EqualWeights()
	}
	return Weights{Edge: w.Edge / s, Node: w.Node / s, Gloss: w.Gloss / s}
}

// simShardCount is the number of shards of the pairwise-Sim cache.
// Sharding keeps many disambiguation goroutines from serializing on one
// mutex; 64 shards are plenty for the worker counts a single host runs.
const simShardCount = 64

// simShard is one cache shard, organized for a read-dominated workload:
// lookups on the clean map are lock-free (one atomic pointer load, no
// read-modify-write — an RWMutex read lock costs three locked RMW ops per
// lookup, which dominated the warm scoring profile). Writers insert into
// the small mutex-guarded dirty map and periodically merge it into a
// fresh clean map swapped in atomically; the publication ordering of
// Store/Load makes the merged map safely immutable to readers.
type simShard struct {
	clean atomic.Pointer[map[uint64]float64] // read-only; never mutated after Store
	mu    sync.Mutex
	dirty map[uint64]float64 // entries since the last merge
}

// lookup returns the cached value for key, lock-free when the entry has
// been merged into the clean map, under the shard mutex while it still
// sits in dirty.
func (sh *simShard) lookup(key uint64) (float64, bool) {
	if p := sh.clean.Load(); p != nil {
		if v, ok := (*p)[key]; ok {
			return v, true
		}
	}
	sh.mu.Lock()
	v, ok := sh.dirty[key]
	sh.mu.Unlock()
	return v, ok
}

// insert records a computed value and merges dirty into a new clean map
// once dirty outgrows a quarter of clean (capped so entries reach the
// lock-free path promptly even in huge shards). Each entry is copied an
// amortized-constant number of times; values are pure functions of the
// immutable network, so racing inserts of one key write the same value.
func (sh *simShard) insert(key uint64, v float64) {
	sh.mu.Lock()
	sh.dirty[key] = v
	n := 0
	if p := sh.clean.Load(); p != nil {
		n = len(*p)
	}
	if threshold := 1 + n/4; len(sh.dirty) >= threshold || len(sh.dirty) >= 1024 {
		merged := make(map[uint64]float64, n+len(sh.dirty))
		if p := sh.clean.Load(); p != nil {
			for k, val := range *p {
				merged[k] = val
			}
		}
		for k, val := range sh.dirty {
			merged[k] = val
		}
		sh.clean.Store(&merged)
		sh.dirty = make(map[uint64]float64)
	}
	sh.mu.Unlock()
}

// Measure evaluates combined semantic similarity between concepts of one
// network. It caches pairwise scores, which matters because disambiguation
// evaluates the same sense pairs many times across context nodes — and,
// when one Measure is shared by a whole batch run, across documents.
//
// The cache is keyed by packed dense int32 concept pairs (canonical
// dense-ascending order), and shard selection is a two-multiply integer
// mix: a warm lookup allocates nothing, hashes no strings, and takes Go's
// fast uint64 map-access path.
//
// Measure is safe for concurrent use: the cache is sharded under
// read-write locks, and cached values are pure functions of the immutable
// network, so duplicated computation under contention is harmless.
type Measure struct {
	net     *semnet.Network
	weights Weights
	shards  [simShardCount]simShard

	hits, misses atomic.Uint64
}

// New returns a Measure over net with the given (normalized) weights.
func New(net *semnet.Network, w Weights) *Measure {
	m := &Measure{
		net:     net,
		weights: w.Normalize(),
	}
	for i := range m.shards {
		m.shards[i].dirty = make(map[uint64]float64)
	}
	return m
}

// Weights returns the active combination weights.
func (m *Measure) Weights() Weights { return m.weights }

// Network returns the network the measure scores over.
func (m *Measure) Network() *semnet.Network { return m.net }

// Sim returns the combined similarity Sim(c1, c2, S̄N) in [0, 1]
// (Definition 9). Identical concepts score 1. Sim is symmetric.
func (m *Measure) Sim(c1, c2 semnet.ConceptID) float64 {
	if c1 == c2 {
		return 1
	}
	d1, ok1 := m.net.Dense(c1)
	d2, ok2 := m.net.Dense(c2)
	if !ok1 || !ok2 {
		// Ids outside the network cannot collide with dense keys; compute
		// uncached (they score 0 on every component measure anyway).
		return m.simDirectSlow(c1, c2)
	}
	return m.SimDense(d1, d2)
}

// SimDense is Sim over dense ids — the scoring core's entry point. The
// pair is canonicalized to dense-ascending order for both the cache key
// and the (order-sensitive, tie-break-wise) computation, so SimDense,
// Sim, and SimDirect agree bit for bit in every argument order.
func (m *Measure) SimDense(d1, d2 semnet.DenseID) float64 {
	if d1 == d2 {
		return 1
	}
	if d2 < d1 {
		d1, d2 = d2, d1
	}
	key := semnet.PairKey(d1, d2)
	sh := &m.shards[semnet.MixPair(d1, d2)%simShardCount]
	if v, ok := sh.lookup(key); ok {
		m.hits.Add(1)
		return v
	}
	m.misses.Add(1)
	v := m.simComputeDense(d1, d2)
	sh.insert(key, v)
	return v
}

// SimDirect computes the combined similarity without consulting or filling
// the cache — the bypass path differential tests compare Sim against. It
// evaluates the pair in canonical order, exactly as Sim caches it, so
// Sim(a, b) == SimDirect(a, b) == SimDirect(b, a) bit for bit.
func (m *Measure) SimDirect(c1, c2 semnet.ConceptID) float64 {
	if c1 == c2 {
		return 1
	}
	d1, ok1 := m.net.Dense(c1)
	d2, ok2 := m.net.Dense(c2)
	if !ok1 || !ok2 {
		return m.simDirectSlow(c1, c2)
	}
	if d2 < d1 {
		d1, d2 = d2, d1
	}
	return m.simComputeDense(d1, d2)
}

// SimDirectDense is SimDirect over dense ids (the bypass path of the
// dense scoring core).
func (m *Measure) SimDirectDense(d1, d2 semnet.DenseID) float64 {
	if d1 == d2 {
		return 1
	}
	if d2 < d1 {
		d1, d2 = d2, d1
	}
	return m.simComputeDense(d1, d2)
}

// simComputeDense evaluates the weighted combination for a canonical
// (dense-ascending) pair.
func (m *Measure) simComputeDense(d1, d2 semnet.DenseID) float64 {
	v := m.weights.Edge*m.edgeDense(d1, d2) +
		m.weights.Node*m.nodeICDense(d1, d2) +
		m.weights.Gloss*m.glossDense(d1, d2)
	if v < 0 {
		v = 0
	} else if v > 1 {
		v = 1
	}
	return v
}

// simDirectSlow handles ConceptIDs outside the network's index through the
// string-keyed component measures, canonicalized by string order.
func (m *Measure) simDirectSlow(c1, c2 semnet.ConceptID) float64 {
	if c2 < c1 {
		c1, c2 = c2, c1
	}
	v := m.weights.Edge*Edge(m.net, c1, c2) +
		m.weights.Node*NodeIC(m.net, c1, c2) +
		m.weights.Gloss*Gloss(m.net, c1, c2)
	if v < 0 {
		v = 0
	} else if v > 1 {
		v = 1
	}
	return v
}

// edgeDense is Edge over dense ids.
func (m *Measure) edgeDense(c1, c2 semnet.DenseID) float64 {
	lcs, ok := m.net.LCSDense(c1, c2)
	if !ok {
		return 0
	}
	d1, d2 := m.net.DepthDense(c1), m.net.DepthDense(c2)
	if d1+d2 == 0 {
		return 0
	}
	return 2 * float64(m.net.DepthDense(lcs)) / float64(d1+d2)
}

// nodeICDense is NodeIC over dense ids.
func (m *Measure) nodeICDense(c1, c2 semnet.DenseID) float64 {
	lcs, ok := m.net.LCSDense(c1, c2)
	if !ok {
		return 0
	}
	ic1, ic2 := m.net.ICDense(c1), m.net.ICDense(c2)
	if ic1+ic2 <= 0 {
		return 0
	}
	v := 2 * m.net.ICDense(lcs) / (ic1 + ic2)
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// glossDense is Gloss over dense ids.
func (m *Measure) glossDense(c1, c2 semnet.DenseID) float64 {
	g1 := m.net.ExpandedGlossTokensDense(c1)
	g2 := m.net.ExpandedGlossTokensDense(c2)
	if len(g1) == 0 || len(g2) == 0 {
		return 0
	}
	raw := phraseOverlap(g1, g2)
	return raw / (raw + glossSaturation)
}

// Stats reports cache hits and misses since construction (atomic counters;
// approximate under concurrency, exact in serial runs).
func (m *Measure) Stats() (hits, misses uint64) {
	return m.hits.Load(), m.misses.Load()
}

// Edge is the Wu-Palmer edge-based measure:
//
//	Sim_Edge(c1, c2) = 2·depth(LCS) / (depth(c1) + depth(c2))
//
// where depth counts hypernym links from the hierarchy root (roots have
// depth 1). Concepts without a common subsumer score 0.
func Edge(net *semnet.Network, c1, c2 semnet.ConceptID) float64 {
	if c1 == c2 {
		return 1
	}
	lcs, ok := net.LCS(c1, c2)
	if !ok {
		return 0
	}
	d1, d2 := net.Depth(c1), net.Depth(c2)
	if d1+d2 == 0 {
		return 0
	}
	return 2 * float64(net.Depth(lcs)) / float64(d1+d2)
}

// NodeIC is Lin's node-based measure:
//
//	Sim_Node(c1, c2) = 2·IC(LCS) / (IC(c1) + IC(c2))
//
// using the cumulative-frequency information content of the weighted
// network. Concepts without a common subsumer score 0.
func NodeIC(net *semnet.Network, c1, c2 semnet.ConceptID) float64 {
	if c1 == c2 {
		return 1
	}
	lcs, ok := net.LCS(c1, c2)
	if !ok {
		return 0
	}
	ic1, ic2 := net.IC(c1), net.IC(c2)
	if ic1+ic2 <= 0 {
		return 0
	}
	v := 2 * net.IC(lcs) / (ic1 + ic2)
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// glossSaturation controls how quickly the raw extended-gloss-overlap score
// saturates toward 1: a single shared word scores 1/(1+K) while a shared
// three-word phrase (9 points) already reaches 9/(9+K). Banerjee-Pedersen's
// raw score is unbounded; this hyperbolic squashing is the "normalized
// extension" the paper calls for, and keeps the measure comparable in
// magnitude to the edge- and node-based measures it is combined with.
const glossSaturation = 8.0

// Gloss is a normalized extended gloss overlap: the glosses of each concept
// are expanded with the glosses of its directly related concepts, maximal
// shared phrases are scored quadratically (a phrase of n consecutive shared
// words scores n²), and the raw score is squashed into [0, 1) by
// raw/(raw+K).
func Gloss(net *semnet.Network, c1, c2 semnet.ConceptID) float64 {
	if c1 == c2 {
		return 1
	}
	g1 := net.ExpandedGlossTokens(c1)
	g2 := net.ExpandedGlossTokens(c2)
	if len(g1) == 0 || len(g2) == 0 {
		return 0
	}
	raw := phraseOverlap(g1, g2)
	return raw / (raw + glossSaturation)
}

// phraseOverlap computes the extended-gloss-overlap raw score: repeatedly
// find the longest common consecutive word sequence between a and b, add
// its squared length, remove it from consideration, until no overlap of
// length >= 1 remains. A dynamic-programming pass finds the longest common
// substring of tokens.
func phraseOverlap(a, b []string) float64 {
	// Work on copies with removable positions marked by "".
	ac := append([]string(nil), a...)
	bc := append([]string(nil), b...)
	var score float64
	for {
		ai, bi, l := longestCommonRun(ac, bc)
		if l == 0 {
			return score
		}
		score += float64(l * l)
		for k := 0; k < l; k++ {
			ac[ai+k] = "\x00a" // sentinel: never matches
			bc[bi+k] = "\x00b"
		}
	}
}

// longestCommonRun returns the start indexes and length of the longest
// common consecutive run of equal tokens in a and b (0 when none).
func longestCommonRun(a, b []string) (ai, bi, l int) {
	if len(a) == 0 || len(b) == 0 {
		return 0, 0, 0
	}
	prev := make([]int, len(b)+1)
	cur := make([]int, len(b)+1)
	for i := 1; i <= len(a); i++ {
		for j := 1; j <= len(b); j++ {
			if a[i-1] == b[j-1] {
				cur[j] = prev[j-1] + 1
				if cur[j] > l {
					l = cur[j]
					ai = i - l
					bi = j - l
				}
			} else {
				cur[j] = 0
			}
		}
		prev, cur = cur, prev
	}
	return ai, bi, l
}
