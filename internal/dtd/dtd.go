// Package dtd implements a Document Type Definition parser and validator
// for the subset of XML DTDs the evaluation grammars need (Table 3 names
// its datasets by DTD: shakespeare.dtd, amazon_product.dtd, ...). The
// corpus generators claim to emit documents over "the same grammars" as
// the paper; this package makes that claim checkable — the ten grammars
// are written down as actual DTDs (grammars.go) and every generated
// document is validated against its grammar in the corpus tests.
//
// Supported declarations:
//
//	<!ELEMENT name EMPTY | ANY | (#PCDATA) | (#PCDATA|a|b)* | content-model>
//	<!ATTLIST elem attr CDATA #REQUIRED|#IMPLIED|"default">
//
// Content models support sequences (a, b), choices (a | b), grouping, and
// the ?, *, + occurrence operators.
package dtd

import (
	"fmt"
	"strings"
	"unicode"
)

// Occurs is a content-particle occurrence indicator.
type Occurs uint8

const (
	// One means exactly once (no indicator).
	One Occurs = iota
	// Optional is the ? indicator.
	Optional
	// ZeroOrMore is the * indicator.
	ZeroOrMore
	// OneOrMore is the + indicator.
	OneOrMore
)

func (o Occurs) String() string {
	switch o {
	case Optional:
		return "?"
	case ZeroOrMore:
		return "*"
	case OneOrMore:
		return "+"
	default:
		return ""
	}
}

// ParticleKind distinguishes content-model node types.
type ParticleKind uint8

const (
	// NameParticle matches one child element by name.
	NameParticle ParticleKind = iota
	// SeqParticle matches its children in order.
	SeqParticle
	// ChoiceParticle matches exactly one of its children.
	ChoiceParticle
)

// Particle is one node of a parsed content model.
type Particle struct {
	Kind     ParticleKind
	Name     string // for NameParticle
	Children []*Particle
	Occurs   Occurs
}

// String renders the particle back in DTD syntax.
func (p *Particle) String() string {
	var body string
	switch p.Kind {
	case NameParticle:
		body = p.Name
	case SeqParticle, ChoiceParticle:
		sep := ", "
		if p.Kind == ChoiceParticle {
			sep = " | "
		}
		parts := make([]string, len(p.Children))
		for i, c := range p.Children {
			parts[i] = c.String()
		}
		body = "(" + strings.Join(parts, sep) + ")"
	}
	return body + p.Occurs.String()
}

// ContentKind distinguishes element content categories.
type ContentKind uint8

const (
	// ElementContent has a content model of child elements.
	ElementContent ContentKind = iota
	// PCDataContent is (#PCDATA): text only.
	PCDataContent
	// MixedContent is (#PCDATA|a|b)*: text interleaved with listed elements.
	MixedContent
	// EmptyContent is EMPTY.
	EmptyContent
	// AnyContent is ANY.
	AnyContent
)

// Element is one <!ELEMENT> declaration.
type Element struct {
	Name    string
	Content ContentKind
	// Model is the content model for ElementContent.
	Model *Particle
	// Mixed lists the element names allowed in MixedContent.
	Mixed []string
}

// Attribute is one attribute definition from <!ATTLIST>.
type Attribute struct {
	Element  string
	Name     string
	Type     string // CDATA, ID, IDREF, NMTOKEN (uninterpreted beyond ID/IDREF)
	Required bool
	Default  string
}

// DTD is a parsed document type definition.
type DTD struct {
	// Name identifies the grammar ("shakespeare.dtd").
	Name string
	// Elements maps element names to their declarations.
	Elements map[string]*Element
	// Attributes maps element names to their attribute definitions.
	Attributes map[string][]Attribute
	// Root is the first declared element, used as the expected document
	// root (the convention the evaluation grammars follow).
	Root string
}

// Parse reads DTD source text.
func Parse(name, src string) (*DTD, error) {
	d := &DTD{
		Name:       name,
		Elements:   map[string]*Element{},
		Attributes: map[string][]Attribute{},
	}
	rest := src
	for {
		i := strings.Index(rest, "<!")
		if i < 0 {
			break
		}
		rest = rest[i:]
		end := strings.IndexByte(rest, '>')
		if end < 0 {
			return nil, fmt.Errorf("dtd %s: unterminated declaration: %.40q", name, rest)
		}
		decl := rest[2:end]
		rest = rest[end+1:]
		switch {
		case strings.HasPrefix(decl, "ELEMENT"):
			el, err := parseElement(strings.TrimSpace(decl[len("ELEMENT"):]))
			if err != nil {
				return nil, fmt.Errorf("dtd %s: %w", name, err)
			}
			if _, dup := d.Elements[el.Name]; dup {
				return nil, fmt.Errorf("dtd %s: duplicate element %q", name, el.Name)
			}
			d.Elements[el.Name] = el
			if d.Root == "" {
				d.Root = el.Name
			}
		case strings.HasPrefix(decl, "ATTLIST"):
			attrs, err := parseAttlist(strings.TrimSpace(decl[len("ATTLIST"):]))
			if err != nil {
				return nil, fmt.Errorf("dtd %s: %w", name, err)
			}
			for _, a := range attrs {
				d.Attributes[a.Element] = append(d.Attributes[a.Element], a)
			}
		case strings.HasPrefix(decl, "--"):
			// comment <!-- ... --> ; the '>' split above may cut long
			// comments short, but the grammars here keep comments simple.
		default:
			return nil, fmt.Errorf("dtd %s: unsupported declaration <!%.20s...>", name, decl)
		}
	}
	if len(d.Elements) == 0 {
		return nil, fmt.Errorf("dtd %s: no element declarations", name)
	}
	// All names referenced by content models must be declared.
	for _, el := range d.Elements {
		for _, ref := range referencedNames(el) {
			if _, ok := d.Elements[ref]; !ok {
				return nil, fmt.Errorf("dtd %s: element %q references undeclared %q", name, el.Name, ref)
			}
		}
	}
	return d, nil
}

// MustParse is Parse that panics, for the embedded grammar constants.
//
// Panic audit: this panic is unreachable from user input. Every non-test
// caller (grammars.go) passes compile-time string constants that are
// exercised at package initialization, so a malformed grammar fails the
// build's own tests, never a serving process. User-supplied DTDs must go
// through Parse, which returns the error.
func MustParse(name, src string) *DTD {
	d, err := Parse(name, src)
	if err != nil {
		panic(err)
	}
	return d
}

func referencedNames(el *Element) []string {
	var out []string
	if el.Content == MixedContent {
		out = append(out, el.Mixed...)
	}
	var walk func(p *Particle)
	walk = func(p *Particle) {
		if p == nil {
			return
		}
		if p.Kind == NameParticle {
			out = append(out, p.Name)
		}
		for _, c := range p.Children {
			walk(c)
		}
	}
	walk(el.Model)
	return out
}

// parseElement handles "name EMPTY|ANY|(...)" with optional occurrence.
func parseElement(s string) (*Element, error) {
	name, rest := splitName(s)
	if name == "" {
		return nil, fmt.Errorf("ELEMENT: missing name in %q", s)
	}
	rest = strings.TrimSpace(rest)
	el := &Element{Name: name}
	switch {
	case rest == "EMPTY":
		el.Content = EmptyContent
	case rest == "ANY":
		el.Content = AnyContent
	case strings.HasPrefix(rest, "("):
		inner := rest
		if strings.HasPrefix(strings.TrimSpace(trimOuter(inner)), "#PCDATA") {
			names, mixed, err := parseMixed(inner)
			if err != nil {
				return nil, fmt.Errorf("ELEMENT %s: %w", name, err)
			}
			if mixed {
				el.Content = MixedContent
				el.Mixed = names
			} else {
				el.Content = PCDataContent
			}
		} else {
			p := &parser{src: rest}
			model, err := p.parseParticle()
			if err != nil {
				return nil, fmt.Errorf("ELEMENT %s: %w", name, err)
			}
			p.skipSpace()
			if p.pos != len(p.src) {
				return nil, fmt.Errorf("ELEMENT %s: trailing %q", name, p.src[p.pos:])
			}
			el.Content = ElementContent
			el.Model = model
		}
	default:
		return nil, fmt.Errorf("ELEMENT %s: unsupported content spec %q", name, rest)
	}
	return el, nil
}

// trimOuter removes one layer of parentheses if present (without checking
// balance; used only to peek for #PCDATA).
func trimOuter(s string) string {
	s = strings.TrimSpace(s)
	if strings.HasPrefix(s, "(") {
		return s[1:]
	}
	return s
}

// parseMixed handles (#PCDATA) and (#PCDATA|a|b)*.
func parseMixed(s string) (names []string, mixed bool, err error) {
	s = strings.TrimSpace(s)
	star := strings.HasSuffix(s, "*")
	s = strings.TrimSuffix(s, "*")
	s = strings.TrimSpace(s)
	if !strings.HasPrefix(s, "(") || !strings.HasSuffix(s, ")") {
		return nil, false, fmt.Errorf("malformed mixed content %q", s)
	}
	parts := strings.Split(s[1:len(s)-1], "|")
	if strings.TrimSpace(parts[0]) != "#PCDATA" {
		return nil, false, fmt.Errorf("mixed content must start with #PCDATA: %q", s)
	}
	for _, p := range parts[1:] {
		p = strings.TrimSpace(p)
		if p == "" {
			return nil, false, fmt.Errorf("empty name in mixed content %q", s)
		}
		names = append(names, p)
	}
	if len(names) > 0 && !star {
		return nil, false, fmt.Errorf("mixed content with elements requires trailing *: %q", s)
	}
	return names, len(names) > 0, nil
}

// parseAttlist handles "elem (attr type default)+".
func parseAttlist(s string) ([]Attribute, error) {
	elem, rest := splitName(s)
	if elem == "" {
		return nil, fmt.Errorf("ATTLIST: missing element name in %q", s)
	}
	var out []Attribute
	rest = strings.TrimSpace(rest)
	for rest != "" {
		var attr, typ string
		attr, rest = splitName(rest)
		typ, rest = splitName(strings.TrimSpace(rest))
		if attr == "" || typ == "" {
			return nil, fmt.Errorf("ATTLIST %s: malformed definition near %q", elem, rest)
		}
		a := Attribute{Element: elem, Name: attr, Type: typ}
		rest = strings.TrimSpace(rest)
		switch {
		case strings.HasPrefix(rest, "#REQUIRED"):
			a.Required = true
			rest = strings.TrimSpace(rest[len("#REQUIRED"):])
		case strings.HasPrefix(rest, "#IMPLIED"):
			rest = strings.TrimSpace(rest[len("#IMPLIED"):])
		case strings.HasPrefix(rest, `"`):
			end := strings.Index(rest[1:], `"`)
			if end < 0 {
				return nil, fmt.Errorf("ATTLIST %s: unterminated default for %s", elem, attr)
			}
			a.Default = rest[1 : 1+end]
			rest = strings.TrimSpace(rest[end+2:])
		default:
			return nil, fmt.Errorf("ATTLIST %s: missing default spec for %s near %q", elem, attr, rest)
		}
		out = append(out, a)
	}
	return out, nil
}

// splitName splits the leading XML name token from s.
func splitName(s string) (name, rest string) {
	s = strings.TrimLeftFunc(s, unicode.IsSpace)
	for i, r := range s {
		if unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' || r == '-' || r == '.' || r == ':' {
			continue
		}
		return s[:i], s[i:]
	}
	return s, ""
}

// parser is a recursive-descent content-model parser.
type parser struct {
	src string
	pos int
}

func (p *parser) skipSpace() {
	for p.pos < len(p.src) && (p.src[p.pos] == ' ' || p.src[p.pos] == '\t' || p.src[p.pos] == '\n' || p.src[p.pos] == '\r') {
		p.pos++
	}
}

// parseParticle parses a name or parenthesized group, with an occurrence
// suffix.
func (p *parser) parseParticle() (*Particle, error) {
	p.skipSpace()
	if p.pos >= len(p.src) {
		return nil, fmt.Errorf("unexpected end of content model")
	}
	var out *Particle
	if p.src[p.pos] == '(' {
		p.pos++
		group, err := p.parseGroup()
		if err != nil {
			return nil, err
		}
		p.skipSpace()
		if p.pos >= len(p.src) || p.src[p.pos] != ')' {
			return nil, fmt.Errorf("missing ) at %q", p.src[p.pos:])
		}
		p.pos++
		out = group
	} else {
		name, rest := splitName(p.src[p.pos:])
		if name == "" {
			return nil, fmt.Errorf("expected name at %q", p.src[p.pos:])
		}
		p.pos = len(p.src) - len(rest)
		out = &Particle{Kind: NameParticle, Name: name}
	}
	if p.pos < len(p.src) {
		switch p.src[p.pos] {
		case '?':
			out.Occurs = Optional
			p.pos++
		case '*':
			out.Occurs = ZeroOrMore
			p.pos++
		case '+':
			out.Occurs = OneOrMore
			p.pos++
		}
	}
	return out, nil
}

// parseGroup parses the inside of (...) — a sequence or a choice.
func (p *parser) parseGroup() (*Particle, error) {
	first, err := p.parseParticle()
	if err != nil {
		return nil, err
	}
	children := []*Particle{first}
	kind := SeqParticle
	sep := byte(0)
	for {
		p.skipSpace()
		if p.pos >= len(p.src) || p.src[p.pos] == ')' {
			break
		}
		c := p.src[p.pos]
		if c != ',' && c != '|' {
			return nil, fmt.Errorf("expected , or | at %q", p.src[p.pos:])
		}
		if sep == 0 {
			sep = c
			if c == '|' {
				kind = ChoiceParticle
			}
		} else if sep != c {
			return nil, fmt.Errorf("mixed , and | in one group at %q", p.src[p.pos:])
		}
		p.pos++
		next, err := p.parseParticle()
		if err != nil {
			return nil, err
		}
		children = append(children, next)
	}
	if len(children) == 1 {
		// (x) is just x; keep any occurrence applied to the group later.
		return children[0], nil
	}
	return &Particle{Kind: kind, Children: children}, nil
}
