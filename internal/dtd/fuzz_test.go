package dtd

import "testing"

// FuzzParse checks the DTD parser never panics on arbitrary input and that
// anything it accepts re-renders and validates structurally.
func FuzzParse(f *testing.F) {
	f.Add(shakespeareDTD)
	f.Add(clubDTD)
	f.Add(`<!ELEMENT a (b, c?, (d | e)*)> <!ELEMENT b (#PCDATA)> <!ELEMENT c EMPTY> <!ELEMENT d ANY> <!ELEMENT e (#PCDATA)>`)
	f.Add(`<!ATTLIST a id CDATA #REQUIRED>`)
	f.Add(`garbage`)
	f.Fuzz(func(t *testing.T, src string) {
		d, err := Parse("fuzz.dtd", src)
		if err != nil {
			return
		}
		if d.Root == "" {
			t.Fatal("accepted DTD without a root")
		}
		for name, el := range d.Elements {
			if el.Name != name {
				t.Fatalf("element map key %q != name %q", name, el.Name)
			}
			if el.Content == ElementContent && el.Model == nil {
				t.Fatalf("element %q has nil model", name)
			}
			// Rendering the model must not panic.
			if el.Model != nil {
				_ = el.Model.String()
			}
		}
	})
}
