package dtd

// The ten evaluation grammars of Table 3, written as actual DTDs. The
// corpus generators (internal/corpus) are tested to emit documents
// conforming to these — the executable form of DESIGN.md's "same grammars"
// substitution claim.

// Grammars maps the Table 3 grammar file names to parsed DTDs.
var Grammars = map[string]*DTD{
	"shakespeare.dtd":     MustParse("shakespeare.dtd", shakespeareDTD),
	"amazon_product.dtd":  MustParse("amazon_product.dtd", amazonDTD),
	"ProceedingsPage.dtd": MustParse("ProceedingsPage.dtd", sigmodDTD),
	"movies.dtd":          MustParse("movies.dtd", moviesDTD),
	"bib.dtd":             MustParse("bib.dtd", bibDTD),
	"cd_catalog.dtd":      MustParse("cd_catalog.dtd", cdDTD),
	"food_menu.dtd":       MustParse("food_menu.dtd", foodDTD),
	"plant_catalog.dtd":   MustParse("plant_catalog.dtd", plantDTD),
	"personnel.dtd":       MustParse("personnel.dtd", personnelDTD),
	"club.dtd":            MustParse("club.dtd", clubDTD),
}

const shakespeareDTD = `
<!ELEMENT PLAY (TITLE, PERSONAE, PROLOGUE, ACT+, EPILOGUE)>
<!ELEMENT TITLE (#PCDATA)>
<!ELEMENT PERSONAE (TITLE, PERSONA+)>
<!ELEMENT PERSONA (#PCDATA)>
<!ELEMENT PROLOGUE (SPEECH)>
<!ELEMENT EPILOGUE (SPEECH)>
<!ELEMENT ACT (TITLE, SCENE+)>
<!ELEMENT SCENE (TITLE, SPEECH+, STAGEDIR)>
<!ELEMENT SPEECH (SPEAKER, LINE+)>
<!ELEMENT SPEAKER (#PCDATA)>
<!ELEMENT LINE (#PCDATA)>
<!ELEMENT STAGEDIR (#PCDATA)>
`

const amazonDTD = `
<!ELEMENT products (product+)>
<!ELEMENT product (item, CustomerReview, stock, shipping, ListPrice, feature?)>
<!ELEMENT item (BrandName, ProductName, detail)>
<!ELEMENT BrandName (#PCDATA)>
<!ELEMENT ProductName (#PCDATA)>
<!ELEMENT detail (description)>
<!ELEMENT description (#PCDATA)>
<!ELEMENT CustomerReview (rating, customer)>
<!ELEMENT rating (#PCDATA)>
<!ELEMENT customer (#PCDATA)>
<!ELEMENT stock (condition)>
<!ELEMENT condition (#PCDATA)>
<!ELEMENT shipping (ItemWeight)>
<!ELEMENT ItemWeight (#PCDATA)>
<!ELEMENT ListPrice (#PCDATA)>
<!ATTLIST ListPrice currency CDATA #REQUIRED>
<!ELEMENT feature (#PCDATA)>
`

const sigmodDTD = `
<!ELEMENT proceedings (title, volume, number, conference, article+)>
<!ELEMENT title (#PCDATA)>
<!ELEMENT volume (#PCDATA)>
<!ELEMENT number (#PCDATA)>
<!ELEMENT conference (#PCDATA)>
<!ELEMENT article (title, initPage, endPage, authors)>
<!ELEMENT initPage (#PCDATA)>
<!ELEMENT endPage (#PCDATA)>
<!ELEMENT authors (author+)>
<!ELEMENT author (#PCDATA)>
`

const moviesDTD = `
<!ELEMENT movies (movie+)>
<!ELEMENT movie (title, director, genre, cast, plot)>
<!ATTLIST movie year CDATA #REQUIRED>
<!ELEMENT title (#PCDATA)>
<!ELEMENT director (#PCDATA)>
<!ELEMENT genre (#PCDATA)>
<!ELEMENT cast (star+)>
<!ELEMENT star (#PCDATA)>
<!ELEMENT plot (#PCDATA)>
`

const bibDTD = `
<!ELEMENT bib (book+)>
<!ELEMENT book (title, author+, publisher, price)>
<!ATTLIST book year CDATA #REQUIRED>
<!ELEMENT title (#PCDATA)>
<!ELEMENT author (#PCDATA)>
<!ELEMENT publisher (#PCDATA)>
<!ELEMENT price (#PCDATA)>
`

const cdDTD = `
<!ELEMENT catalog (cd+)>
<!ELEMENT cd (title, artist, country, company, price, year)>
<!ELEMENT title (#PCDATA)>
<!ELEMENT artist (#PCDATA)>
<!ELEMENT country (#PCDATA)>
<!ELEMENT company (#PCDATA)>
<!ELEMENT price (#PCDATA)>
<!ELEMENT year (#PCDATA)>
`

const foodDTD = `
<!ELEMENT breakfast_menu (food+)>
<!ELEMENT food (name, price, description, calories)>
<!ELEMENT name (#PCDATA)>
<!ELEMENT price (#PCDATA)>
<!ELEMENT description (#PCDATA)>
<!ELEMENT calories (#PCDATA)>
`

const plantDTD = `
<!ELEMENT catalog (plant+)>
<!ELEMENT plant (common, botanical, zone, light, price, availability)>
<!ELEMENT common (#PCDATA)>
<!ELEMENT botanical (#PCDATA)>
<!ELEMENT zone (#PCDATA)>
<!ELEMENT light (#PCDATA)>
<!ELEMENT price (#PCDATA)>
<!ELEMENT availability (#PCDATA)>
`

const personnelDTD = `
<!ELEMENT personnel (person+)>
<!ELEMENT person (name, email, address)>
<!ELEMENT name (family, given)>
<!ELEMENT family (#PCDATA)>
<!ELEMENT given (#PCDATA)>
<!ELEMENT email (#PCDATA)>
<!ELEMENT address (street, city, state, zip)>
<!ELEMENT street (#PCDATA)>
<!ELEMENT city (#PCDATA)>
<!ELEMENT state (#PCDATA)>
<!ELEMENT zip (#PCDATA)>
`

const clubDTD = `
<!ELEMENT club (president, member+)>
<!ELEMENT president (#PCDATA)>
<!ELEMENT member (name, age, hobby)>
<!ATTLIST member since CDATA #REQUIRED>
<!ELEMENT name (#PCDATA)>
<!ELEMENT age (#PCDATA)>
<!ELEMENT hobby (#PCDATA)>
`
