package dtd

import (
	"strings"
	"testing"

	"repro/internal/corpus"
	"repro/internal/xmltree"
)

func TestParseBasics(t *testing.T) {
	d, err := Parse("t.dtd", `
		<!ELEMENT a (b, c?, (d | e)*)>
		<!ELEMENT b (#PCDATA)>
		<!ELEMENT c EMPTY>
		<!ELEMENT d ANY>
		<!ELEMENT e (#PCDATA|b)*>
		<!ATTLIST a id ID #REQUIRED lang CDATA "en">
	`)
	if err != nil {
		t.Fatal(err)
	}
	if d.Root != "a" {
		t.Errorf("root = %s", d.Root)
	}
	if d.Elements["a"].Content != ElementContent {
		t.Error("a should have element content")
	}
	if got := d.Elements["a"].Model.String(); got != "(b, c?, (d | e)*)" {
		t.Errorf("model = %s", got)
	}
	if d.Elements["b"].Content != PCDataContent {
		t.Error("b should be PCDATA")
	}
	if d.Elements["c"].Content != EmptyContent {
		t.Error("c should be EMPTY")
	}
	if d.Elements["d"].Content != AnyContent {
		t.Error("d should be ANY")
	}
	if e := d.Elements["e"]; e.Content != MixedContent || len(e.Mixed) != 1 || e.Mixed[0] != "b" {
		t.Errorf("e mixed = %+v", e)
	}
	attrs := d.Attributes["a"]
	if len(attrs) != 2 || !attrs[0].Required || attrs[1].Default != "en" {
		t.Errorf("attrs = %+v", attrs)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct{ name, src string }{
		{"empty", ``},
		{"unterminated", `<!ELEMENT a (b`},
		{"undeclared ref", `<!ELEMENT a (b)>`},
		{"duplicate", `<!ELEMENT a (#PCDATA)> <!ELEMENT a (#PCDATA)>`},
		{"mixed separators", `<!ELEMENT a (b, c | d)> <!ELEMENT b (#PCDATA)> <!ELEMENT c (#PCDATA)> <!ELEMENT d (#PCDATA)>`},
		{"mixed no star", `<!ELEMENT a (#PCDATA|b)> <!ELEMENT b (#PCDATA)>`},
		{"bad attlist", `<!ELEMENT a (#PCDATA)> <!ATTLIST a x CDATA>`},
		{"unknown decl", `<!DOCTYPE a>`},
	}
	for _, c := range cases {
		if _, err := Parse(c.name, c.src); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func mustTree(t *testing.T, doc string) *xmltree.Tree {
	t.Helper()
	tr, err := xmltree.ParseString(doc, xmltree.DefaultParseOptions())
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestValidateContentModels(t *testing.T) {
	d := MustParse("t.dtd", `
		<!ELEMENT a (b, c?, (d | e)+)>
		<!ELEMENT b (#PCDATA)>
		<!ELEMENT c (#PCDATA)>
		<!ELEMENT d (#PCDATA)>
		<!ELEMENT e (#PCDATA)>
	`)
	valid := []string{
		`<a><b/><d/></a>`,
		`<a><b/><c/><e/></a>`,
		`<a><b/><d/><e/><d/></a>`,
	}
	for _, doc := range valid {
		if err := d.Validate(mustTree(t, doc)); err != nil {
			t.Errorf("%s should validate: %v", doc, err)
		}
	}
	invalid := []string{
		`<a><d/></a>`,         // missing required b
		`<a><b/></a>`,         // missing (d|e)+
		`<a><b/><c/><c/></a>`, // c repeated
		`<a><b/><d/><b/></a>`, // b after group
		`<x><b/></x>`,         // wrong root
		`<a><b/><d/><f/></a>`, // undeclared f
	}
	for _, doc := range invalid {
		if err := d.Validate(mustTree(t, doc)); err == nil {
			t.Errorf("%s should NOT validate", doc)
		}
	}
}

func TestValidateTextRestrictions(t *testing.T) {
	d := MustParse("t.dtd", `
		<!ELEMENT a (b)>
		<!ELEMENT b (#PCDATA)>
	`)
	if err := d.Validate(mustTree(t, `<a>text<b/></a>`)); err == nil {
		t.Error("element content with text should fail")
	}
	if err := d.Validate(mustTree(t, `<a><b>hello world</b></a>`)); err != nil {
		t.Errorf("PCDATA content should pass: %v", err)
	}
}

func TestValidateAttributes(t *testing.T) {
	d := MustParse("t.dtd", `
		<!ELEMENT a (#PCDATA)>
		<!ATTLIST a id CDATA #REQUIRED note CDATA #IMPLIED>
	`)
	if err := d.Validate(mustTree(t, `<a id="1" note="x">t</a>`)); err != nil {
		t.Errorf("valid attributes rejected: %v", err)
	}
	if err := d.Validate(mustTree(t, `<a note="x">t</a>`)); err == nil {
		t.Error("missing required attribute should fail")
	}
	if err := d.Validate(mustTree(t, `<a id="1" bogus="x">t</a>`)); err == nil {
		t.Error("undeclared attribute should fail")
	}
}

// TestCorpusConformsToGrammars is the executable form of the DESIGN.md
// substitution claim: every generated document validates against its
// Table 3 grammar.
func TestCorpusConformsToGrammars(t *testing.T) {
	for _, d := range corpus.Generate(42) {
		g, ok := Grammars[d.Grammar]
		if !ok {
			t.Fatalf("no grammar for %s", d.Grammar)
		}
		if err := g.Validate(d.Tree); err != nil {
			t.Errorf("%s: %v", d.Name, err)
		}
	}
}

// TestCorpusConformsAcrossSeeds guards the generators against seed-specific
// structures.
func TestCorpusConformsAcrossSeeds(t *testing.T) {
	for _, seed := range []int64{7, 999} {
		for _, d := range corpus.Generate(seed) {
			if err := Grammars[d.Grammar].Validate(d.Tree); err != nil {
				t.Errorf("seed %d %s: %v", seed, d.Name, err)
			}
		}
	}
}

func TestGrammarsWellFormed(t *testing.T) {
	if len(Grammars) != 10 {
		t.Fatalf("%d grammars, want 10", len(Grammars))
	}
	for name, g := range Grammars {
		if g.Root == "" || len(g.Elements) == 0 {
			t.Errorf("%s degenerate: %+v", name, g)
		}
		if !strings.HasSuffix(name, ".dtd") {
			t.Errorf("odd grammar name %s", name)
		}
	}
}
