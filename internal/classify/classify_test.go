package classify

import (
	"testing"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/wordnet"
	"repro/internal/xmltree"
)

// disambiguatedCorpus returns the corpus with senses assigned, grouped by a
// coarse domain label derived from the dataset.
func disambiguatedCorpus(t *testing.T) map[string][]*xmltree.Tree {
	t.Helper()
	fw, err := core.New(wordnet.Default(), core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	out := map[string][]*xmltree.Tree{}
	for _, d := range corpus.Generate(42) {
		if _, err := fw.ProcessTree(d.Tree); err != nil {
			t.Fatal(err)
		}
		out[domainOf(d.Dataset)] = append(out[domainOf(d.Dataset)], d.Tree)
	}
	return out
}

// domainOf maps datasets to three coarse domains used as classes.
func domainOf(dataset int) string {
	switch dataset {
	case 1, 4, 6: // shakespeare, movies, cd: arts & entertainment
		return "arts"
	case 3, 5: // sigmod, bib: publications
		return "publications"
	default: // amazon, food, plant, personnel, club: commerce & records
		return "records"
	}
}

func TestDocumentProfile(t *testing.T) {
	fw, _ := core.New(wordnet.Default(), core.DefaultOptions())
	d := corpus.GenerateDataset(42, 4)[0]
	if _, err := fw.ProcessTree(d.Tree); err != nil {
		t.Fatal(err)
	}
	p := DocumentProfile(d.Tree)
	if len(p) == 0 {
		t.Fatal("empty profile")
	}
	// L2 norm = 1.
	var norm float64
	for _, w := range p {
		norm += w * w
	}
	if norm < 0.999 || norm > 1.001 {
		t.Errorf("profile norm = %f", norm)
	}
	// The movie concept must appear.
	if p["picture.n.02"] <= 0 {
		t.Errorf("movie profile lacks picture.n.02: %v", p)
	}
}

func TestCosineProfile(t *testing.T) {
	a := Profile{"x.n.01": 1}.normalize()
	b := Profile{"x.n.01": 0.5, "y.n.01": 0.5}.normalize()
	if got := Cosine(a, a); got < 0.999 {
		t.Errorf("self cosine = %f", got)
	}
	if got := Cosine(a, b); got <= 0 || got >= 1 {
		t.Errorf("partial cosine = %f", got)
	}
	if got := Cosine(a, Profile{"z.n.01": 1}); got != 0 {
		t.Errorf("disjoint cosine = %f", got)
	}
}

// TestLeaveOneOutAccuracy trains on all but one document per domain and
// checks held-out documents classify into their own domain with solid
// accuracy — the semantic-clustering claim of §1.
func TestLeaveOneOutAccuracy(t *testing.T) {
	byDomain := disambiguatedCorpus(t)
	correct, total := 0, 0
	for heldDomain, docs := range byDomain {
		for i := range docs {
			if i >= 4 {
				break // 4 held-out docs per domain keep the test fast
			}
			c := New(wordnet.Default())
			for domain, ds := range byDomain {
				for j, tr := range ds {
					if domain == heldDomain && j == i {
						continue
					}
					c.Train(domain, tr)
				}
			}
			got, err := c.Predict(docs[i])
			if err != nil {
				t.Fatal(err)
			}
			total++
			if got == heldDomain {
				correct++
			}
		}
	}
	acc := float64(correct) / float64(total)
	if acc < 0.7 {
		t.Errorf("leave-one-out accuracy = %.2f (%d/%d), want >= 0.7", acc, correct, total)
	}
}

func TestClassifyRanking(t *testing.T) {
	byDomain := disambiguatedCorpus(t)
	c := New(wordnet.Default())
	for domain, ds := range byDomain {
		c.Train(domain, ds...)
	}
	if got := c.Classes(); len(got) != 3 {
		t.Fatalf("classes = %v", got)
	}
	preds := c.Classify(byDomain["arts"][0])
	if len(preds) != 3 {
		t.Fatalf("predictions = %v", preds)
	}
	for i := 1; i < len(preds); i++ {
		if preds[i].Score > preds[i-1].Score {
			t.Error("predictions not sorted")
		}
	}
}

func TestPredictErrors(t *testing.T) {
	c := New(wordnet.Default())
	empty := xmltree.New(&xmltree.Node{Label: "x"})
	if _, err := c.Predict(empty); err == nil {
		t.Error("untrained classifier should error")
	}
	c.Train("a", empty) // trains an empty centroid, still no concepts in doc
	if _, err := c.Predict(empty); err == nil {
		t.Error("concept-less document should error")
	}
}

func TestRelaxedScoringHelps(t *testing.T) {
	// A document using "film" (picture.n.02) should match a centroid built
	// around related movie concepts even without exact overlap.
	doc := Profile{"picture.n.02": 1}.normalize()
	cen := Profile{"director.n.01": 1}.normalize()
	c := New(wordnet.Default())
	strict := Cosine(doc, cen)
	relaxedScore := c.score(doc, cen)
	if strict != 0 {
		t.Fatalf("expected no exact overlap, cosine = %f", strict)
	}
	if relaxedScore <= 0 {
		t.Skip("director/picture similarity below the relaxation floor on this lexicon")
	}
}
