// Package classify implements semantic XML document classification —
// another application motivating the paper (§1: "XML document
// classification and clustering: grouping together documents based on
// their semantic similarities, rather than performing syntactic-only
// processing").
//
// A document is reduced to its weighted concept profile (counts of the
// concepts XSDF assigned, compound senses split); a class is the averaged
// profile of its training documents; classification assigns the class
// whose centroid is semantically closest. Two document-to-centroid
// similarities are available: exact concept cosine (fast, syntactic on the
// concept level), and relaxed similarity that scores non-identical
// concepts with a semantic similarity measure — so a movie document using
// "film" still matches a class trained on "picture"-tagged documents even
// when disambiguation produced related-but-different concepts.
package classify

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/semnet"
	"repro/internal/simmeasure"
	"repro/internal/xmltree"
)

// Profile is a weighted concept vector describing one document or class.
type Profile map[semnet.ConceptID]float64

// DocumentProfile extracts the concept profile of a disambiguated tree:
// concept counts L2-normalized. Nodes without senses are ignored.
func DocumentProfile(t *xmltree.Tree) Profile {
	p := Profile{}
	for _, n := range t.Nodes() {
		if n.Sense == "" {
			continue
		}
		for _, part := range strings.Split(n.Sense, "+") {
			p[semnet.ConceptID(part)]++
		}
	}
	return p.normalize()
}

func (p Profile) normalize() Profile {
	var norm float64
	for _, w := range p {
		norm += w * w
	}
	if norm == 0 {
		return p
	}
	norm = math.Sqrt(norm)
	for c := range p {
		p[c] /= norm
	}
	return p
}

// Cosine is the exact concept-overlap similarity of two profiles.
func Cosine(a, b Profile) float64 {
	var dot float64
	for c, w := range a {
		dot += w * b[c]
	}
	return dot
}

// Classifier is a centroid (Rocchio-style) classifier over concept
// profiles.
type Classifier struct {
	net       *semnet.Network
	sim       *simmeasure.Measure
	centroids map[string]Profile
	// RelaxedWeight scales the contribution of semantically-similar (but
	// non-identical) concept pairs in relaxed scoring; 0 disables
	// relaxation.
	RelaxedWeight float64
	// MinSim is the semantic similarity floor below which concept pairs
	// contribute nothing to relaxed scoring.
	MinSim float64
}

// New returns an empty classifier using the given network for relaxed
// similarity.
func New(net *semnet.Network) *Classifier {
	return &Classifier{
		net:           net,
		sim:           simmeasure.New(net, simmeasure.EqualWeights()),
		centroids:     map[string]Profile{},
		RelaxedWeight: 0.5,
		MinSim:        0.6,
	}
}

// Train adds disambiguated documents to a class, updating its centroid.
func (c *Classifier) Train(class string, trees ...*xmltree.Tree) {
	cen := c.centroids[class]
	if cen == nil {
		cen = Profile{}
		c.centroids[class] = cen
	}
	for _, t := range trees {
		for concept, w := range DocumentProfile(t) {
			cen[concept] += w
		}
	}
	c.centroids[class] = cen.normalize()
}

// Classes returns the trained class names, sorted.
func (c *Classifier) Classes() []string {
	out := make([]string, 0, len(c.centroids))
	for name := range c.centroids {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Prediction is one class with its similarity score.
type Prediction struct {
	Class string
	Score float64
}

// Classify ranks all classes for a disambiguated document, best first.
func (c *Classifier) Classify(t *xmltree.Tree) []Prediction {
	doc := DocumentProfile(t)
	preds := make([]Prediction, 0, len(c.centroids))
	for class, cen := range c.centroids {
		preds = append(preds, Prediction{Class: class, Score: c.score(doc, cen)})
	}
	sort.Slice(preds, func(i, j int) bool {
		if preds[i].Score != preds[j].Score {
			return preds[i].Score > preds[j].Score
		}
		return preds[i].Class < preds[j].Class
	})
	return preds
}

// Predict returns the best class, or an error for an untrained classifier
// or a profile-less document.
func (c *Classifier) Predict(t *xmltree.Tree) (string, error) {
	if len(c.centroids) == 0 {
		return "", fmt.Errorf("classify: no trained classes")
	}
	if len(DocumentProfile(t)) == 0 {
		return "", fmt.Errorf("classify: document has no disambiguated concepts")
	}
	return c.Classify(t)[0].Class, nil
}

// score combines exact cosine with relaxed cross-concept similarity.
func (c *Classifier) score(doc, cen Profile) float64 {
	exact := Cosine(doc, cen)
	if c.RelaxedWeight <= 0 {
		return exact
	}
	return exact + c.RelaxedWeight*c.relaxed(doc, cen)
}

// relaxed credits semantically close concept pairs that do not match
// exactly: for each document concept, the best similarity to any centroid
// concept above the floor, weighted by both masses.
func (c *Classifier) relaxed(doc, cen Profile) float64 {
	var total float64
	for dc, dw := range doc {
		best := 0.0
		for cc, cw := range cen {
			if dc == cc {
				continue // exact overlap already counted
			}
			if s := c.sim.Sim(dc, cc); s >= c.MinSim && s*cw > best {
				best = s * cw
			}
		}
		total += dw * best
	}
	return total
}
