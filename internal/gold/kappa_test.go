package gold

import (
	"sort"
	"testing"

	"repro/internal/corpus"
	"repro/internal/eval"
	"repro/internal/lingproc"
	"repro/internal/wordnet"
	"repro/internal/xmltree"
)

// TestPanelInterAnnotatorAgreement measures Fleiss' kappa over the
// simulated panel's sense votes on the full annotated corpus. With five
// annotators at 0.92 accuracy, agreement must land in the "substantial"
// band (> 0.6) — real WSD annotation campaigns report comparable values,
// which keeps the simulated gold standard plausible.
func TestPanelInterAnnotatorAgreement(t *testing.T) {
	net := wordnet.Default()
	p := DefaultPanel(42)

	// Collect votes over all annotated nodes; build the category space from
	// every sense that received at least one vote.
	var nodes []*xmltree.Node
	votesByNode := map[*xmltree.Node]map[string]int{}
	for _, d := range corpus.Generate(42) {
		lingproc.ProcessTree(d.Tree, net)
		sel := p.SelectNodes(d, 13)
		for n, v := range p.SenseVotes(net, sel) {
			nodes = append(nodes, n)
			votesByNode[n] = v
		}
	}
	catIndex := map[string]int{}
	for _, v := range votesByNode {
		for s := range v {
			if _, ok := catIndex[s]; !ok {
				catIndex[s] = len(catIndex)
			}
		}
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].Index < nodes[j].Index })
	ratings := make([][]int, len(nodes))
	for i, n := range nodes {
		row := make([]int, len(catIndex))
		for s, c := range votesByNode[n] {
			row[catIndex[s]] = c
		}
		ratings[i] = row
	}

	kappa, ok := eval.FleissKappa(ratings)
	if !ok {
		t.Fatal("kappa undefined")
	}
	if kappa < 0.6 {
		t.Errorf("inter-annotator kappa = %.3f, want substantial agreement (> 0.6)", kappa)
	}
	if kappa > 0.999 {
		t.Errorf("kappa = %.3f: the panel shows no disagreement at all, which is implausible", kappa)
	}
	t.Logf("panel Fleiss kappa over %d nodes, %d sense categories: %.3f",
		len(nodes), len(catIndex), kappa)
}

// TestSenseVotesSumToPanelSize: every node's votes account for every
// annotator exactly once.
func TestSenseVotesSumToPanelSize(t *testing.T) {
	net := wordnet.Default()
	p := DefaultPanel(7)
	d := preparedDoc(t, 1)
	sel := p.SelectNodes(d, 13)
	for n, votes := range p.SenseVotes(net, sel) {
		total := 0
		for _, c := range votes {
			total += c
		}
		if total != p.Annotators {
			t.Errorf("%s: %d votes for %d annotators", n.Label, total, p.Annotators)
		}
	}
}
