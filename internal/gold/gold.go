// Package gold simulates the human annotators of the paper's experiments
// (§4.2–4.3): five test subjects who (a) rated the ambiguity of ~12-13
// pre-selected nodes per document on an integer 0-4 scale and (b) chose the
// appropriate WordNet sense for each of those nodes.
//
// The original human judgments are unavailable, so the package models them:
//
//   - Sense annotations: each simulated annotator reports the corpus gold
//     sense with high probability and a random competing sense of the same
//     lemma otherwise; the per-node human answer is the majority vote.
//
//   - Ambiguity ratings follow the perceptual account the paper itself
//     gives for Table 2. Human perception of a node's ambiguity is driven
//     by the label's polysemy *discounted by how obviously its context
//     resolves it*. In small, flat documents the annotator sees the whole
//     context at once, so the obviousness discount dominates (the paper's
//     "state under address" example: rated 0/4 despite 8 WordNet senses);
//     in large, deep documents the discount is weak and perceived ambiguity
//     tracks polysemy — which is what makes Table 2 strongly positive only
//     for Group 1.
//
// All randomness is seeded; the same seed reproduces the same panel.
package gold

import (
	"math/rand"
	"sort"

	"repro/internal/ambiguity"
	"repro/internal/corpus"
	"repro/internal/semnet"
	"repro/internal/simmeasure"
	"repro/internal/sphere"
	"repro/internal/xmltree"
)

// Panel is a simulated group of annotators.
type Panel struct {
	// Annotators is the panel size (the paper used 5).
	Annotators int
	// SenseAccuracy is each annotator's probability of reporting the gold
	// sense.
	SenseAccuracy float64
	// RatingNoise is the standard deviation of the Gaussian noise added to
	// each annotator's perceived ambiguity (on the 0-1 scale).
	RatingNoise float64
	// Seed drives the panel's pseudo-randomness.
	Seed int64
}

// DefaultPanel mirrors the paper's setup: five annotators, high agreement
// on sense choice, noticeable disagreement on the fuzzier 0-4 ambiguity
// ratings.
func DefaultPanel(seed int64) Panel {
	return Panel{Annotators: 5, SenseAccuracy: 0.92, RatingNoise: 0.42, Seed: seed}
}

// SelectNodes picks up to perDoc gold-bearing nodes of the document,
// mirroring the paper's random pre-selection of 12-13 nodes per document.
// Selection is deterministic per panel seed and document name.
func (p Panel) SelectNodes(d corpus.Doc, perDoc int) []*xmltree.Node {
	var candidates []*xmltree.Node
	for _, n := range d.Tree.Nodes() {
		if n.Gold != "" {
			candidates = append(candidates, n)
		}
	}
	rng := rand.New(rand.NewSource(p.Seed ^ hashString(d.Name)))
	rng.Shuffle(len(candidates), func(i, j int) {
		candidates[i], candidates[j] = candidates[j], candidates[i]
	})
	if len(candidates) > perDoc {
		candidates = candidates[:perDoc]
	}
	sort.Slice(candidates, func(i, j int) bool { return candidates[i].Index < candidates[j].Index })
	return candidates
}

// SenseVotes returns each annotator panel's raw vote counts per node
// (sense id -> votes), the basis for both the majority annotation and
// inter-annotator agreement statistics (eval.FleissKappa).
func (p Panel) SenseVotes(net *semnet.Network, nodes []*xmltree.Node) map[*xmltree.Node]map[string]int {
	out := make(map[*xmltree.Node]map[string]int, len(nodes))
	for _, n := range nodes {
		rng := rand.New(rand.NewSource(p.Seed ^ int64(n.Index)*2654435761 ^ hashString(n.Raw)))
		votes := map[string]int{}
		for a := 0; a < p.Annotators; a++ {
			if rng.Float64() < p.SenseAccuracy {
				votes[n.Gold]++
				continue
			}
			votes[p.competingSense(net, n, rng)]++
		}
		out[n] = votes
	}
	return out
}

// AnnotateSenses returns the panel's majority-vote sense for each node.
// Nodes whose gold sense is a compound pair are voted as a unit.
func (p Panel) AnnotateSenses(net *semnet.Network, nodes []*xmltree.Node) map[*xmltree.Node]string {
	out := make(map[*xmltree.Node]string, len(nodes))
	for n, votes := range p.SenseVotes(net, nodes) {
		best, bestN := n.Gold, 0
		for s, c := range votes {
			if c > bestN || (c == bestN && s < best) {
				best, bestN = s, c
			}
		}
		out[n] = best
	}
	return out
}

// competingSense returns a plausible wrong answer: another sense of the
// node's (first) token, or the gold itself for monosemous labels.
func (p Panel) competingSense(net *semnet.Network, n *xmltree.Node, rng *rand.Rand) string {
	tokens := n.Tokens
	if len(tokens) == 0 {
		tokens = []string{n.Label}
	}
	senses := net.Senses(tokens[0])
	if len(senses) <= 1 {
		return n.Gold
	}
	s := senses[rng.Intn(len(senses))]
	return string(s)
}

// RatingModel holds the perceptual parameters of the ambiguity-rating
// simulation.
type RatingModel struct {
	// ObviousnessSmall and ObviousnessLarge are the context-discount
	// weights for small (flat) and large (deep) documents; the effective
	// weight interpolates by document size.
	ObviousnessSmall float64
	ObviousnessLarge float64
	// SmallDocNodes is the size at or below which a document counts as
	// fully surveyable by the annotator.
	SmallDocNodes int
	// LargeDocNodes is the size at or above which the discount bottoms out.
	LargeDocNodes int
	// ObviousnessCutoff is the context similarity above which an annotator
	// simply "sees" the intended meaning and reports no ambiguity at all —
	// the paper's "state under address" effect (§4.2): 8 WordNet senses,
	// rated 0/4 by every tester.
	ObviousnessCutoff float64
}

// DefaultRatingModel returns the calibration used by the Table 2
// experiment.
func DefaultRatingModel() RatingModel {
	return RatingModel{
		ObviousnessSmall:  0.95,
		ObviousnessLarge:  0.15,
		SmallDocNodes:     110,
		LargeDocNodes:     170,
		ObviousnessCutoff: 0.55,
	}
}

// RateAmbiguity returns the panel's mean ambiguity rating (integer 0-4
// per annotator, averaged) for each node of the document.
func (p Panel) RateAmbiguity(net *semnet.Network, d corpus.Doc, nodes []*xmltree.Node, m RatingModel) map[*xmltree.Node]float64 {
	size := d.Tree.Len()
	w := obviousnessWeight(size, m)
	sim := simmeasure.New(net, simmeasure.EdgeOnly())
	out := make(map[*xmltree.Node]float64, len(nodes))
	for _, n := range nodes {
		perceived := p.perceivedAmbiguity(net, sim, n, w, m)
		rng := rand.New(rand.NewSource(p.Seed ^ int64(n.Index)*40503 ^ hashString(d.Name)))
		var sum float64
		for a := 0; a < p.Annotators; a++ {
			v := perceived + rng.NormFloat64()*p.RatingNoise
			if v < 0 {
				v = 0
			} else if v > 1 {
				v = 1
			}
			sum += float64(int(v*4 + 0.5)) // integer rating 0..4
		}
		out[n] = sum / float64(p.Annotators)
	}
	return out
}

// obviousnessWeight interpolates the context discount by document size.
func obviousnessWeight(size int, m RatingModel) float64 {
	if size <= m.SmallDocNodes {
		return m.ObviousnessSmall
	}
	if size >= m.LargeDocNodes {
		return m.ObviousnessLarge
	}
	t := float64(size-m.SmallDocNodes) / float64(m.LargeDocNodes-m.SmallDocNodes)
	return m.ObviousnessSmall + t*(m.ObviousnessLarge-m.ObviousnessSmall)
}

// perceivedAmbiguity models one annotator's pre-noise impression in [0, 1]:
// normalized polysemy discounted by how strongly the immediate context pins
// down the gold sense. Past the obviousness cutoff the discount is total —
// the annotator simply reads the intended meaning off the context and
// reports no ambiguity, however many dictionary senses the word has.
func (p Panel) perceivedAmbiguity(net *semnet.Network, sim *simmeasure.Measure, n *xmltree.Node, w float64, m RatingModel) float64 {
	label := n.Label
	if len(n.Tokens) > 0 {
		label = n.Tokens[0]
	}
	senses := net.PolysemyOf(label)
	if senses <= 1 {
		return 0
	}
	// Perceived polysemy saturates: humans do not distinguish 12 from 20
	// dictionary senses.
	poly := float64(senses-1) / 6
	if poly > 1 {
		poly = 1
	}
	obv := p.contextObviousness(net, sim, n)
	discount := w * obv * 0.75
	if obv >= m.ObviousnessCutoff {
		discount = w
	}
	v := poly * (1 - discount)
	if v < 0 {
		return 0
	}
	return v
}

// contextObviousness estimates how clearly the surrounding labels resolve
// the node's meaning: the maximum over context senses of (a) edge-based
// similarity with the gold sense, and (b) direct relation proximity — a
// context sense within two relation hops of the gold sense (part-of a
// publication, member of a club, ...) makes the meaning immediately
// apparent to a human reader even when the taxonomic branches diverge.
func (p Panel) contextObviousness(net *semnet.Network, sim *simmeasure.Measure, n *xmltree.Node) float64 {
	gold := firstConcept(n.Gold)
	if gold == "" {
		return 0
	}
	goldID := semnet.ConceptID(gold)
	near := net.Neighborhood(goldID, 2)
	best := 0.0
	for _, m := range sphere.Sphere(n, 2) {
		if m.Node == n {
			continue
		}
		for _, t := range tokensOf(m.Node) {
			for _, s := range net.Senses(t) {
				if _, hop := near[s]; hop && s != goldID {
					return 0.9
				}
				if v := sim.Sim(goldID, s); v > best {
					best = v
				}
			}
		}
	}
	return best
}

func tokensOf(n *xmltree.Node) []string {
	if len(n.Tokens) > 0 {
		return n.Tokens
	}
	return []string{n.Label}
}

// firstConcept returns the first id of a possibly compound gold annotation
// ("a+b" -> "a").
func firstConcept(gold string) string {
	for i := 0; i < len(gold); i++ {
		if gold[i] == '+' {
			return gold[:i]
		}
	}
	return gold
}

// SystemRatings computes the system-side ambiguity degrees for the same
// nodes, under the given weight configuration — the x-variable of the
// Table 2 correlations.
func SystemRatings(net *semnet.Network, t *xmltree.Tree, nodes []*xmltree.Node, w ambiguity.Weights) map[*xmltree.Node]float64 {
	out := make(map[*xmltree.Node]float64, len(nodes))
	for _, n := range nodes {
		out[n] = ambiguity.Degree(n, t, net, w)
	}
	return out
}

// hashString is a small deterministic string hash (FNV-1a) used to derive
// per-document seeds.
func hashString(s string) int64 {
	var h uint64 = 14695981039346656037
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return int64(h & 0x7fffffffffffffff)
}
