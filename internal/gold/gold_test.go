package gold

import (
	"strings"
	"testing"

	"repro/internal/ambiguity"
	"repro/internal/corpus"
	"repro/internal/lingproc"
	"repro/internal/wordnet"
)

func preparedDoc(t *testing.T, dataset int) corpus.Doc {
	t.Helper()
	docs := corpus.GenerateDataset(42, dataset)
	d := docs[0]
	lingproc.ProcessTree(d.Tree, wordnet.Default())
	return d
}

func TestSelectNodesDeterministicAndBounded(t *testing.T) {
	p := DefaultPanel(42)
	d := preparedDoc(t, 1)
	a := p.SelectNodes(d, 13)
	b := p.SelectNodes(d, 13)
	if len(a) != len(b) || len(a) == 0 || len(a) > 13 {
		t.Fatalf("selection sizes: %d, %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("selection not deterministic")
		}
	}
	for _, n := range a {
		if n.Gold == "" {
			t.Error("selected node without gold sense")
		}
	}
	// Different seeds pick different subsets (with high probability on a
	// 200-node document).
	p2 := DefaultPanel(43)
	c := p2.SelectNodes(d, 13)
	same := true
	for i := range a {
		if i >= len(c) || a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different panel seeds selected identical nodes")
	}
}

func TestAnnotateSensesMostlyGold(t *testing.T) {
	p := DefaultPanel(42)
	net := wordnet.Default()
	d := preparedDoc(t, 1)
	sel := p.SelectNodes(d, 13)
	ann := p.AnnotateSenses(net, sel)
	agree := 0
	for _, n := range sel {
		if ann[n] == n.Gold {
			agree++
		}
		if ann[n] == "" {
			t.Errorf("empty annotation for %s", n.Label)
		}
	}
	// With 5 annotators at 0.92 accuracy the majority matches gold almost
	// always.
	if agree < len(sel)-2 {
		t.Errorf("only %d/%d annotations match gold", agree, len(sel))
	}
}

func TestAnnotateSensesDeterministic(t *testing.T) {
	p := DefaultPanel(7)
	net := wordnet.Default()
	d := preparedDoc(t, 4)
	sel := p.SelectNodes(d, 13)
	a := p.AnnotateSenses(net, sel)
	b := p.AnnotateSenses(net, sel)
	for _, n := range sel {
		if a[n] != b[n] {
			t.Fatal("annotation not deterministic")
		}
	}
}

func TestRateAmbiguityRange(t *testing.T) {
	p := DefaultPanel(42)
	net := wordnet.Default()
	m := DefaultRatingModel()
	for _, ds := range []int{1, 9} {
		d := preparedDoc(t, ds)
		sel := p.SelectNodes(d, 13)
		ratings := p.RateAmbiguity(net, d, sel, m)
		for n, r := range ratings {
			if r < 0 || r > 4 {
				t.Errorf("rating(%s) = %f out of [0,4]", n.Label, r)
			}
		}
	}
}

// TestStateUnderAddressRatedLow reproduces the paper's flagship Table 2
// observation: "state" under "address" is polysemous (the system rates it
// high) but contextually obvious (humans rate it ~0).
func TestStateUnderAddressRatedLow(t *testing.T) {
	p := DefaultPanel(42)
	net := wordnet.Default()
	m := DefaultRatingModel()
	d := preparedDoc(t, 9)
	var states []*struct {
		human  float64
		system float64
	}
	var all []*struct{ human, system float64 }
	_ = all
	sel := d.Tree.Nodes()
	ratings := p.RateAmbiguity(net, d, sel, m)
	sys := SystemRatings(net, d.Tree, sel, ambiguity.EqualWeights())
	for _, n := range sel {
		if n.Raw == "state" {
			states = append(states, &struct {
				human  float64
				system float64
			}{ratings[n], sys[n]})
		}
	}
	if len(states) == 0 {
		t.Fatal("no state nodes")
	}
	for _, s := range states {
		if s.human > 1.5 {
			t.Errorf("human rating of state = %.2f, want near 0 (obvious in context)", s.human)
		}
		if s.system <= 0.05 {
			t.Errorf("system rating of state = %.3f, want clearly positive (8 senses)", s.system)
		}
	}
}

func TestSystemRatings(t *testing.T) {
	net := wordnet.Default()
	d := preparedDoc(t, 1)
	sel := d.Tree.Nodes()[:10]
	sys := SystemRatings(net, d.Tree, sel, ambiguity.EqualWeights())
	if len(sys) != len(sel) {
		t.Fatalf("got %d ratings", len(sys))
	}
	for n, v := range sys {
		if v < 0 || v > 1 {
			t.Errorf("system rating(%s) = %f", n.Label, v)
		}
	}
}

func TestObviousnessWeightInterpolation(t *testing.T) {
	m := DefaultRatingModel()
	if w := obviousnessWeight(10, m); w != m.ObviousnessSmall {
		t.Errorf("small doc weight = %f", w)
	}
	if w := obviousnessWeight(10000, m); w != m.ObviousnessLarge {
		t.Errorf("large doc weight = %f", w)
	}
	mid := obviousnessWeight((m.SmallDocNodes+m.LargeDocNodes)/2, m)
	if !(mid < m.ObviousnessSmall && mid > m.ObviousnessLarge) {
		t.Errorf("mid weight = %f not interpolated", mid)
	}
}

func TestFirstConcept(t *testing.T) {
	if firstConcept("a.n.01+b.n.02") != "a.n.01" {
		t.Error("compound first concept wrong")
	}
	if firstConcept("a.n.01") != "a.n.01" {
		t.Error("single concept wrong")
	}
	if firstConcept("") != "" {
		t.Error("empty")
	}
}

func TestHashStringStableAndSpread(t *testing.T) {
	if hashString("abc") != hashString("abc") {
		t.Error("hash unstable")
	}
	if hashString("abc") == hashString("abd") {
		t.Error("hash collision on near neighbors") // unlikely, would indicate a bug
	}
	if hashString("") < 0 {
		t.Error("hash must be non-negative")
	}
}

func TestCompetingSenseDiffersForPolysemous(t *testing.T) {
	p := DefaultPanel(1)
	net := wordnet.Default()
	d := preparedDoc(t, 1)
	// Find a polysemous gold node and check annotators occasionally
	// disagree — with 5 annotators at 0.92, over many nodes at least one
	// vote differs somewhere.
	sel := p.SelectNodes(d, 13)
	ann := p.AnnotateSenses(net, sel)
	_ = ann
	diverged := false
	for _, n := range sel {
		if strings.Contains(n.Gold, "+") {
			continue
		}
		if len(net.Senses(n.Tokens[0])) > 1 {
			diverged = true
		}
	}
	if !diverged {
		t.Skip("no polysemous nodes selected")
	}
}
