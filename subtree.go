// Incremental subtree disambiguation: the public face of the SAX-style
// bounded-memory mode. A document of any size streams through a
// SubtreeScanner; each completed subtree runs the full pipeline and is
// handed to the caller, so live memory is proportional to one subtree
// (plus the framework's shared caches), never to the document.
package xsdf

import (
	"context"
	"io"
	"runtime/debug"

	"repro/internal/core"
	"repro/internal/lingproc"
	"repro/internal/xmltree"
)

// recoveredPanic boxes a panic escaping the incremental driver, matching
// the panic isolation of the whole-document entry points.
func recoveredPanic(v any) error {
	return &PanicError{Doc: -1, Value: v, Stack: debug.Stack()}
}

// SubtreeOptions tunes incremental subtree disambiguation. The
// framework's MaxDepth/MaxNodes/MaxTokenBytes guards apply per subtree,
// with depth counted from the subtree root.
type SubtreeOptions struct {
	// SplitDepth is the element depth whose elements become subtree
	// roots: 1 (the default) splits at the children of the document
	// root.
	SplitDepth int
	// MaxSubtreeBytes bounds one subtree's encoded input size (0 selects
	// xmltree.DefaultMaxSubtreeBytes, negative disables). An oversized
	// subtree fails alone — the scan continues behind it.
	MaxSubtreeBytes int64
	// MaxSubtrees bounds how many subtrees one document may attempt (0
	// selects xmltree.DefaultMaxSubtrees, negative disables). Exceeding
	// it ends the document with a *LimitError.
	MaxSubtrees int
}

type (
	// Subtree is one completed subtree emitted by a SubtreeScanner, with
	// its document path and input byte range.
	Subtree = xmltree.Subtree
	// SubtreeScanner is the pull-based incremental parser; build one
	// with Framework.SubtreeScanner.
	SubtreeScanner = xmltree.SubtreeScanner
	// SubtreeError locates an incremental-parse failure: the subtree
	// ordinal, the input byte offset, whether the failure is fatal for
	// the document, and the wrapped typed error.
	SubtreeError = xmltree.SubtreeError
	// SubtreeSummary aggregates an incremental run: subtree, failure,
	// target, and assignment counts plus the worst degradation level.
	SubtreeSummary = core.SubtreeSummary
)

// SubtreeResult is one subtree's outcome within a DisambiguateSubtrees
// run: the subtree's identity (ordinal, envelope path, encoded size) and
// either its pipeline Result or its typed error. A degraded subtree
// carries both.
type SubtreeResult struct {
	Index  int
	Path   []string
	Bytes  int64
	Result *Result
	Err    error
}

// SubtreeScanner returns an incremental parser over r configured with
// the framework's content mode, tokenizer, and resource guards —
// the parsing half of DisambiguateSubtrees, for callers that schedule
// pipeline runs themselves (the streaming server dispatches each
// subtree into its in-flight window).
func (f *Framework) SubtreeScanner(r io.Reader, o SubtreeOptions) *SubtreeScanner {
	return xmltree.NewSubtreeScanner(r, xmltree.SubtreeOptions{
		ParseOptions: xmltree.ParseOptions{
			IncludeContent: f.inner.Options().IncludeContent,
			Tokenize:       lingproc.Tokenize,
			MaxDepth:       f.limits.depth,
			MaxNodes:       f.limits.nodes,
			MaxTokenBytes:  f.limits.tokenBytes,
		},
		SplitDepth:      o.SplitDepth,
		MaxSubtreeBytes: o.MaxSubtreeBytes,
		MaxSubtrees:     o.MaxSubtrees,
	})
}

// DisambiguateSubtrees incrementally parses the document from r and runs
// the full pipeline on each completed subtree, invoking fn (when
// non-nil) once per attempted subtree in document order. Failures are
// scoped: a subtree that trips a guard or fails in the pipeline is
// reported through its SubtreeResult.Err and the scan continues;
// malformed input or a document-level budget violation stops the scan
// and returns the fatal error, with every earlier subtree already
// delivered. fn returning an error stops the run with that error.
//
// Memory stays bounded by one subtree regardless of document size —
// the entry point for documents too large for Disambiguate.
func (f *Framework) DisambiguateSubtrees(ctx context.Context, r io.Reader, o SubtreeOptions, fn func(SubtreeResult) error) (sum SubtreeSummary, err error) {
	defer func() {
		if v := recover(); v != nil {
			err = recoveredPanic(v)
		}
	}()
	sc := f.SubtreeScanner(r, o)
	return f.inner.ProcessSubtrees(ctx, sc, func(cr core.SubtreeResult) error {
		if fn == nil {
			return nil
		}
		out := SubtreeResult{Index: cr.Index, Path: cr.Path, Bytes: cr.Bytes, Err: cr.Err}
		if cr.Result != nil {
			out.Result = fromCore(cr.Result)
		}
		return fn(out)
	})
}
