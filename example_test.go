package xsdf_test

import (
	"fmt"

	"repro"
)

// Example demonstrates the end-to-end pipeline on the paper's Figure 1
// document: the ambiguous labels resolve to concepts, with "Kelly" mapped
// to Grace Kelly through the cast/star context.
func Example() {
	fw, err := xsdf.New(xsdf.Options{Radius: 2})
	if err != nil {
		panic(err)
	}
	res, err := fw.DisambiguateString(`<films>
	  <picture title="Rear Window">
	    <director>Hitchcock</director>
	    <cast><star>Stewart</star><star>Kelly</star></cast>
	  </picture>
	</films>`)
	if err != nil {
		panic(err)
	}
	for _, label := range []string{"cast", "kelly", "hitchcock"} {
		for _, n := range res.Tree.Nodes() {
			if n.Label == label {
				fmt.Printf("%s -> %s\n", n.Label, n.Sense)
			}
		}
	}
	// Output:
	// cast -> cast.n.01
	// kelly -> kelly.n.01
	// hitchcock -> hitchcock.n.01
}

// ExampleFramework_Candidates shows the score ranking behind a decision.
func ExampleFramework_Candidates() {
	fw, _ := xsdf.New(xsdf.Options{Radius: 2})
	res, _ := fw.DisambiguateString(`<picture><cast><star>Kelly</star></cast></picture>`)
	for _, n := range res.Tree.Nodes() {
		if n.Label != "cast" {
			continue
		}
		cands := fw.Candidates(n)
		fmt.Printf("%d candidate senses; best %s\n", len(cands), cands[0].Sense)
	}
	// Output:
	// 5 candidate senses; best cast.n.01
}

// ExampleFramework_ExplainSimilarity prints the taxonomic chain connecting
// two concepts.
func ExampleFramework_ExplainSimilarity() {
	fw, _ := xsdf.New(xsdf.Options{})
	for _, c := range fw.ExplainSimilarity("actress.n.01", "dancer.n.01") {
		fmt.Println(c)
	}
	// Output:
	// actress.n.01
	// actor.n.01
	// performer.n.01
	// dancer.n.01
}

// ExampleFramework_Disambiguate_threshold selects only the most ambiguous
// nodes (Thresh_Amb of §3.3) instead of disambiguating everything.
func ExampleFramework_Disambiguate_threshold() {
	fw, _ := xsdf.New(xsdf.Options{Threshold: 0.08})
	res, _ := fw.DisambiguateString(`<films>
	  <picture title="Rear Window">
	    <director>Hitchcock</director>
	    <cast><star>Stewart</star><star>Kelly</star></cast>
	  </picture>
	</films>`)
	fmt.Printf("selected %d of %d nodes\n", res.Targets, res.Tree.Len())
	// Output:
	// selected 8 of 12 nodes
}
