// Command xsdf-diagnose prints per-label disambiguation confusions for one
// configuration, a debugging aid for calibrating the corpus and lexicon:
//
//	xsdf-diagnose -group 1 -d 1 -method concept
package main

import (
	"flag"
	"fmt"
	"sort"

	"repro/internal/disambig"
	"repro/internal/experiments"
	"repro/internal/simmeasure"
)

func main() {
	var (
		seed   = flag.Int64("seed", 42, "corpus seed")
		group  = flag.Int("group", 0, "restrict to one test group (0 = all)")
		radius = flag.Int("d", 1, "sphere radius")
		method = flag.String("method", "concept", "concept | context | combined")
	)
	flag.Parse()

	cfg := experiments.DefaultConfig()
	cfg.Seed = *seed
	r := experiments.NewRunner(cfg)

	var m disambig.Method
	switch *method {
	case "concept":
		m = disambig.ConceptBased
	case "context":
		m = disambig.ContextBased
	default:
		m = disambig.Combined
	}
	dis := disambig.New(r.Network(), disambig.Options{
		Radius: *radius, Method: m, SimWeights: simmeasure.EqualWeights(),
		ConceptWeight: 0.5, ContextWeight: 0.5,
	})

	type stat struct {
		total, correct, missed int
		confusions             map[string]int
	}
	stats := map[string]*stat{}
	for i, doc := range r.Docs() {
		if *group != 0 && doc.Group != *group {
			continue
		}
		for _, n := range r.Selected(i) {
			st := stats[n.Label]
			if st == nil {
				st = &stat{confusions: map[string]int{}}
				stats[n.Label] = st
			}
			st.total++
			s, ok := dis.Node(n)
			if !ok {
				st.missed++
				continue
			}
			want := r.HumanSense(n)
			if s.ID() == want {
				st.correct++
			} else {
				st.confusions[fmt.Sprintf("%s (want %s)", s.ID(), want)]++
			}
		}
	}
	var labels []string
	for l := range stats {
		labels = append(labels, l)
	}
	sort.Slice(labels, func(i, j int) bool {
		si, sj := stats[labels[i]], stats[labels[j]]
		return (si.total - si.correct) > (sj.total - sj.correct)
	})
	fmt.Printf("%-16s %5s %5s %5s  top confusion\n", "label", "tot", "ok", "miss")
	for _, l := range labels {
		st := stats[l]
		top := ""
		best := 0
		for c, n := range st.confusions {
			if n > best {
				best, top = n, c
			}
		}
		fmt.Printf("%-16s %5d %5d %5d  %s\n", l, st.total, st.correct, st.missed, top)
	}
}
