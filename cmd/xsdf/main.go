// Command xsdf disambiguates an XML document against the embedded
// mini-WordNet and writes the semantic XML tree (or a concept report) to
// stdout:
//
//	xsdf doc.xml                      # annotated XML
//	xsdf -report doc.xml              # label -> concept table
//	xsdf -json doc.xml                # semantic tree as JSON
//	xsdf -d 2 -method combined -threshold 0.05 doc.xml
//	xsdf -timeout 50ms -degrade doc.xml   # degrade instead of failing
//	xsdf -stages doc.xml              # per-stage timings on stderr
//	cat doc.xml | xsdf -              # read stdin
//
// Exit codes distinguish the failure modes for scripting:
//
//	0  success at full quality
//	1  internal or unexpected error
//	2  input error (unreadable, malformed, or rejected by a resource guard)
//	3  deadline exceeded
//	4  rejected by the admission gate (overload)
//	5  success, but degraded: the -degrade ladder reduced scoring quality
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"repro"
)

// The command's exit codes (see the package comment).
const (
	exitOK       = 0
	exitErr      = 1
	exitInput    = 2
	exitTimeout  = 3
	exitOverload = 4
	exitDegraded = 5
)

// fail logs the message and exits with the given code. Deferred cleanups
// (the input file close) are skipped, as with log.Fatal before.
func fail(code int, format string, args ...any) {
	log.Printf(format, args...)
	os.Exit(code)
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("xsdf: ")
	var (
		radius    = flag.Int("d", 1, "sphere neighborhood radius (context size)")
		method    = flag.String("method", "concept", "disambiguation process: concept | context | combined")
		threshold = flag.Float64("threshold", 0, "Thresh_Amb: only nodes with Amb_Deg >= threshold are disambiguated")
		auto      = flag.Bool("auto-threshold", false, "estimate Thresh_Amb from the document")
		structure = flag.Bool("structure-only", false, "ignore element/attribute text values")
		report    = flag.Bool("report", false, "print a label -> concept table instead of annotated XML")
		asJSON    = flag.Bool("json", false, "emit the semantic tree as JSON instead of annotated XML")
		vectorSim = flag.String("vector-sim", "cosine", "context-vector similarity: cosine | jaccard | pearson")
		timeout   = flag.Duration("timeout", 0, "abort the run after this long (0 = no deadline)")
		degrade   = flag.Bool("degrade", false, "degrade scoring quality instead of failing when -timeout expires")
		maxDepth  = flag.Int("max-depth", 0, "element nesting limit (0 = default, -1 = unlimited)")
		maxNodes  = flag.Int("max-nodes", 0, "tree node-count limit (0 = default, -1 = unlimited)")
		stages    = flag.Bool("stages", false, "print per-stage pipeline timings to stderr")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fail(exitInput, "usage: xsdf [flags] <file.xml | ->")
	}

	var in io.Reader = os.Stdin
	if name := flag.Arg(0); name != "-" {
		f, err := os.Open(name)
		if err != nil {
			fail(exitInput, "%v", err)
		}
		defer f.Close()
		in = f
	}

	opts := xsdf.Options{
		Radius:           *radius,
		Threshold:        *threshold,
		AutoThreshold:    *auto,
		StructureOnly:    *structure,
		VectorSimilarity: *vectorSim,
		MaxDepth:         *maxDepth,
		MaxNodes:         *maxNodes,
		Degrade:          xsdf.DegradeOptions{Enabled: *degrade},
	}
	switch *method {
	case "concept":
		opts.Method = xsdf.ConceptBased
	case "context":
		opts.Method = xsdf.ContextBased
	case "combined":
		opts.Method = xsdf.Combined
	default:
		fail(exitInput, "unknown method %q", *method)
	}

	fw, err := xsdf.New(opts)
	if err != nil {
		fail(exitErr, "%v", err)
	}
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	res, err := fw.DisambiguateContext(ctx, in)
	if err != nil {
		switch {
		case errors.Is(err, xsdf.ErrOverloaded):
			fail(exitOverload, "rejected by admission gate: %v", err)
		case errors.Is(err, xsdf.ErrCanceled):
			fail(exitTimeout, "deadline of %v exceeded (%v); use -degrade to finish at reduced quality", *timeout, err)
		case errors.Is(err, xsdf.ErrLimitExceeded):
			fail(exitInput, "input rejected by resource guard: %v (raise -max-depth/-max-nodes to override)", err)
		case errors.Is(err, xsdf.ErrMalformedInput):
			fail(exitInput, "%v", err)
		default:
			fail(exitErr, "%v", err)
		}
	}

	if *stages {
		// Stdout stays clean for the document; the timing table goes to
		// stderr like the quality note.
		log.Printf("%-14s %8s %12s", "stage", "items", "duration")
		for _, st := range res.Stages {
			mark := ""
			if st.Failed {
				mark = "  (failed)"
			}
			log.Printf("%-14s %8d %12s%s", st.Stage, st.Items, st.Duration, mark)
		}
	}

	code := exitOK
	if res.Degraded != xsdf.DegradeNone {
		// Keep stdout clean for the document; the quality note goes to
		// stderr and into the exit code.
		log.Printf("degraded to %s (%d/%d targets below full quality)",
			res.Degraded, res.Targets-res.NodesAtLevel[xsdf.DegradeNone], res.Targets)
		code = exitDegraded
	}

	switch {
	case *asJSON:
		// Per-node "degraded" fields mark the rung each node was scored at.
		if err := res.Tree.WriteJSON(os.Stdout); err != nil {
			fail(exitErr, "%v", err)
		}
	case *report:
		fmt.Printf("# %d targets, %d assigned (threshold %.3f, quality %s)\n",
			res.Targets, res.Assigned, res.Threshold, res.Degraded)
		for _, n := range res.Tree.Nodes() {
			if n.Sense == "" {
				continue
			}
			gloss := ""
			if c := fw.Network().Concept(xsdf.ConceptID(n.Sense)); c != nil {
				gloss = c.Gloss
			}
			fmt.Printf("%-16s %-20s %.3f  %s\n", n.Label, n.Sense, n.SenseScore, gloss)
		}
	default:
		if err := res.Tree.WriteXML(os.Stdout, true); err != nil {
			fail(exitErr, "%v", err)
		}
	}
	os.Exit(code)
}
