// Command xsdf disambiguates an XML document against the embedded
// mini-WordNet and writes the semantic XML tree (or a concept report) to
// stdout:
//
//	xsdf doc.xml                      # annotated XML
//	xsdf -report doc.xml              # label -> concept table
//	xsdf -json doc.xml                # semantic tree as JSON
//	xsdf -d 2 -method combined -threshold 0.05 doc.xml
//	cat doc.xml | xsdf -              # read stdin
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"repro"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("xsdf: ")
	var (
		radius    = flag.Int("d", 1, "sphere neighborhood radius (context size)")
		method    = flag.String("method", "concept", "disambiguation process: concept | context | combined")
		threshold = flag.Float64("threshold", 0, "Thresh_Amb: only nodes with Amb_Deg >= threshold are disambiguated")
		auto      = flag.Bool("auto-threshold", false, "estimate Thresh_Amb from the document")
		structure = flag.Bool("structure-only", false, "ignore element/attribute text values")
		report    = flag.Bool("report", false, "print a label -> concept table instead of annotated XML")
		asJSON    = flag.Bool("json", false, "emit the semantic tree as JSON instead of annotated XML")
		vectorSim = flag.String("vector-sim", "cosine", "context-vector similarity: cosine | jaccard | pearson")
		timeout   = flag.Duration("timeout", 0, "abort the run after this long (0 = no deadline)")
		maxDepth  = flag.Int("max-depth", 0, "element nesting limit (0 = default, -1 = unlimited)")
		maxNodes  = flag.Int("max-nodes", 0, "tree node-count limit (0 = default, -1 = unlimited)")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		log.Fatal("usage: xsdf [flags] <file.xml | ->")
	}

	var in io.Reader = os.Stdin
	if name := flag.Arg(0); name != "-" {
		f, err := os.Open(name)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		in = f
	}

	opts := xsdf.Options{
		Radius:           *radius,
		Threshold:        *threshold,
		AutoThreshold:    *auto,
		StructureOnly:    *structure,
		VectorSimilarity: *vectorSim,
		MaxDepth:         *maxDepth,
		MaxNodes:         *maxNodes,
	}
	switch *method {
	case "concept":
		opts.Method = xsdf.ConceptBased
	case "context":
		opts.Method = xsdf.ContextBased
	case "combined":
		opts.Method = xsdf.Combined
	default:
		log.Fatalf("unknown method %q", *method)
	}

	fw, err := xsdf.New(opts)
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	res, err := fw.DisambiguateContext(ctx, in)
	if err != nil {
		switch {
		case errors.Is(err, xsdf.ErrCanceled):
			log.Fatalf("deadline of %v exceeded (%v)", *timeout, err)
		case errors.Is(err, xsdf.ErrLimitExceeded):
			log.Fatalf("input rejected by resource guard: %v (raise -max-depth/-max-nodes to override)", err)
		default:
			log.Fatal(err)
		}
	}

	if *asJSON {
		if err := res.Tree.WriteJSON(os.Stdout); err != nil {
			log.Fatal(err)
		}
		return
	}
	if *report {
		fmt.Printf("# %d targets, %d assigned (threshold %.3f)\n", res.Targets, res.Assigned, res.Threshold)
		for _, n := range res.Tree.Nodes() {
			if n.Sense == "" {
				continue
			}
			gloss := ""
			if c := fw.Network().Concept(xsdf.ConceptID(n.Sense)); c != nil {
				gloss = c.Gloss
			}
			fmt.Printf("%-16s %-20s %.3f  %s\n", n.Label, n.Sense, n.SenseScore, gloss)
		}
		return
	}
	if err := res.Tree.WriteXML(os.Stdout, true); err != nil {
		log.Fatal(err)
	}
}
