// Command xsdf disambiguates an XML document against the embedded
// mini-WordNet and writes the semantic XML tree (or a concept report) to
// stdout:
//
//	xsdf doc.xml                      # annotated XML
//	xsdf -report doc.xml              # label -> concept table
//	xsdf -json doc.xml                # semantic tree as JSON
//	xsdf -d 2 -method combined -threshold 0.05 doc.xml
//	xsdf -timeout 50ms -degrade doc.xml   # degrade instead of failing
//	xsdf -stages doc.xml              # per-stage timings on stderr
//	xsdf -subtree huge.xml            # bounded memory: one subtree at a time
//	cat doc.xml | xsdf -              # read stdin
//
// Exit codes distinguish the failure modes for scripting:
//
//	0  success at full quality
//	1  internal or unexpected error
//	2  input error (unreadable, malformed, or rejected by a resource guard)
//	3  deadline exceeded
//	4  rejected by the admission gate (overload)
//	5  success, but degraded: the -degrade ladder reduced scoring quality
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strings"

	"repro"
)

// The command's exit codes (see the package comment).
const (
	exitOK       = 0
	exitErr      = 1
	exitInput    = 2
	exitTimeout  = 3
	exitOverload = 4
	exitDegraded = 5
)

// fail logs the message and exits with the given code. Deferred cleanups
// (the input file close) are skipped, as with log.Fatal before.
func fail(code int, format string, args ...any) {
	log.Printf(format, args...)
	os.Exit(code)
}

// runSubtrees is the incremental mode: the document is parsed and
// disambiguated one subtree at a time, each subtree's output written as
// soon as it completes, so memory stays bounded by the largest subtree
// no matter how large the document. A subtree that trips a guard or
// fails in the pipeline is reported on stderr and skipped; the scan
// continues behind it and the failure is reflected in the exit code.
func runSubtrees(ctx context.Context, fw *xsdf.Framework, in io.Reader, so xsdf.SubtreeOptions, asJSON, report, stages bool) int {
	worst := exitOK
	sum, err := fw.DisambiguateSubtrees(ctx, in, so, func(r xsdf.SubtreeResult) error {
		at := "/" + strings.Join(r.Path, "/")
		if r.Err != nil {
			log.Printf("subtree %d (%s): %v", r.Index, at, r.Err)
			if worst == exitOK || worst == exitDegraded {
				worst = exitInput
			}
			return nil
		}
		res := r.Result
		if res.Degraded != xsdf.DegradeNone && worst == exitOK {
			worst = exitDegraded
		}
		switch {
		case asJSON:
			// One JSON document per subtree, newline-delimited: the
			// incremental counterpart of -json, consumable line by line.
			if err := res.Tree.WriteJSON(os.Stdout); err != nil {
				return err
			}
			fmt.Println()
		case report:
			fmt.Printf("# subtree %d at %s: %d targets, %d assigned\n", r.Index, at, res.Targets, res.Assigned)
			for _, n := range res.Tree.Nodes() {
				if n.Sense == "" {
					continue
				}
				gloss := ""
				if c := fw.Network().Concept(xsdf.ConceptID(n.Sense)); c != nil {
					gloss = c.Gloss
				}
				fmt.Printf("%-16s %-20s %.3f  %s\n", n.Label, n.Sense, n.SenseScore, gloss)
			}
		default:
			if err := res.Tree.WriteXML(os.Stdout, true); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		switch {
		case errors.Is(err, xsdf.ErrOverloaded):
			log.Printf("rejected by admission gate: %v", err)
			return exitOverload
		case errors.Is(err, xsdf.ErrCanceled):
			log.Printf("deadline exceeded: %v", err)
			return exitTimeout
		case errors.Is(err, xsdf.ErrLimitExceeded):
			log.Printf("input rejected by resource guard: %v", err)
			return exitInput
		case errors.Is(err, xsdf.ErrMalformedInput):
			log.Printf("%v (the %d subtrees before the fault were processed)", err, sum.Subtrees)
			return exitInput
		default:
			log.Printf("%v", err)
			return exitErr
		}
	}
	if stages {
		log.Printf("%d subtrees (%d failed), %d targets, %d assigned, quality %s",
			sum.Subtrees, sum.Failed, sum.Targets, sum.Assigned, sum.Degraded)
	}
	return worst
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("xsdf: ")
	var (
		radius    = flag.Int("d", 1, "sphere neighborhood radius (context size)")
		method    = flag.String("method", "concept", "disambiguation process: concept | context | combined")
		threshold = flag.Float64("threshold", 0, "Thresh_Amb: only nodes with Amb_Deg >= threshold are disambiguated")
		auto      = flag.Bool("auto-threshold", false, "estimate Thresh_Amb from the document")
		structure = flag.Bool("structure-only", false, "ignore element/attribute text values")
		report    = flag.Bool("report", false, "print a label -> concept table instead of annotated XML")
		asJSON    = flag.Bool("json", false, "emit the semantic tree as JSON instead of annotated XML")
		vectorSim = flag.String("vector-sim", "cosine", "context-vector similarity: cosine | jaccard | pearson")
		timeout   = flag.Duration("timeout", 0, "abort the run after this long (0 = no deadline)")
		degrade   = flag.Bool("degrade", false, "degrade scoring quality instead of failing when -timeout expires")
		maxDepth  = flag.Int("max-depth", 0, "element nesting limit (0 = default, -1 = unlimited)")
		maxNodes  = flag.Int("max-nodes", 0, "tree node-count limit (0 = default, -1 = unlimited)")
		stages    = flag.Bool("stages", false, "print per-stage pipeline timings to stderr")

		subtree         = flag.Bool("subtree", false, "incremental mode: disambiguate one subtree at a time in bounded memory")
		subtreeDepth    = flag.Int("subtree-depth", 0, "element depth whose subtrees are the incremental units (0 = 1)")
		maxSubtreeBytes = flag.Int64("max-subtree-bytes", 0, "per-subtree encoded-size limit in -subtree mode (0 = default, -1 = unlimited)")
		maxSubtrees     = flag.Int("max-subtrees", 0, "per-document subtree budget in -subtree mode (0 = default, -1 = unlimited)")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fail(exitInput, "usage: xsdf [flags] <file.xml | ->")
	}

	var in io.Reader = os.Stdin
	if name := flag.Arg(0); name != "-" {
		f, err := os.Open(name)
		if err != nil {
			fail(exitInput, "%v", err)
		}
		defer f.Close()
		in = f
	}

	opts := xsdf.Options{
		Radius:           *radius,
		Threshold:        *threshold,
		AutoThreshold:    *auto,
		StructureOnly:    *structure,
		VectorSimilarity: *vectorSim,
		MaxDepth:         *maxDepth,
		MaxNodes:         *maxNodes,
		Degrade:          xsdf.DegradeOptions{Enabled: *degrade},
	}
	switch *method {
	case "concept":
		opts.Method = xsdf.ConceptBased
	case "context":
		opts.Method = xsdf.ContextBased
	case "combined":
		opts.Method = xsdf.Combined
	default:
		fail(exitInput, "unknown method %q", *method)
	}

	fw, err := xsdf.New(opts)
	if err != nil {
		fail(exitErr, "%v", err)
	}
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	if *subtree {
		os.Exit(runSubtrees(ctx, fw, in, xsdf.SubtreeOptions{
			SplitDepth:      *subtreeDepth,
			MaxSubtreeBytes: *maxSubtreeBytes,
			MaxSubtrees:     *maxSubtrees,
		}, *asJSON, *report, *stages))
	}

	res, err := fw.DisambiguateContext(ctx, in)
	if err != nil {
		switch {
		case errors.Is(err, xsdf.ErrOverloaded):
			fail(exitOverload, "rejected by admission gate: %v", err)
		case errors.Is(err, xsdf.ErrCanceled):
			fail(exitTimeout, "deadline of %v exceeded (%v); use -degrade to finish at reduced quality", *timeout, err)
		case errors.Is(err, xsdf.ErrLimitExceeded):
			fail(exitInput, "input rejected by resource guard: %v (raise -max-depth/-max-nodes to override)", err)
		case errors.Is(err, xsdf.ErrMalformedInput):
			fail(exitInput, "%v", err)
		default:
			fail(exitErr, "%v", err)
		}
	}

	if *stages {
		// Stdout stays clean for the document; the timing table goes to
		// stderr like the quality note.
		log.Printf("%-14s %8s %12s", "stage", "items", "duration")
		for _, st := range res.Stages {
			mark := ""
			if st.Failed {
				mark = "  (failed)"
			}
			log.Printf("%-14s %8d %12s%s", st.Stage, st.Items, st.Duration, mark)
		}
	}

	code := exitOK
	if res.Degraded != xsdf.DegradeNone {
		// Keep stdout clean for the document; the quality note goes to
		// stderr and into the exit code.
		log.Printf("degraded to %s (%d/%d targets below full quality)",
			res.Degraded, res.Targets-res.NodesAtLevel[xsdf.DegradeNone], res.Targets)
		code = exitDegraded
	}

	switch {
	case *asJSON:
		// Per-node "degraded" fields mark the rung each node was scored at.
		if err := res.Tree.WriteJSON(os.Stdout); err != nil {
			fail(exitErr, "%v", err)
		}
	case *report:
		fmt.Printf("# %d targets, %d assigned (threshold %.3f, quality %s)\n",
			res.Targets, res.Assigned, res.Threshold, res.Degraded)
		for _, n := range res.Tree.Nodes() {
			if n.Sense == "" {
				continue
			}
			gloss := ""
			if c := fw.Network().Concept(xsdf.ConceptID(n.Sense)); c != nil {
				gloss = c.Gloss
			}
			fmt.Printf("%-16s %-20s %.3f  %s\n", n.Label, n.Sense, n.SenseScore, gloss)
		}
	default:
		if err := res.Tree.WriteXML(os.Stdout, true); err != nil {
			fail(exitErr, "%v", err)
		}
	}
	os.Exit(code)
}
