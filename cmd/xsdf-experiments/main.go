// Command xsdf-experiments regenerates every table and figure of the
// paper's evaluation section (§4) on the synthetic corpus:
//
//	xsdf-experiments                   # run everything (text)
//	xsdf-experiments -table 2          # only Table 2
//	xsdf-experiments -figure 9         # only Figure 9
//	xsdf-experiments -seed 7           # different corpus/annotator seed
//	xsdf-experiments -csv -figure 8    # CSV to stdout for plotting
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("xsdf-experiments: ")
	var (
		seed   = flag.Int64("seed", 42, "corpus and annotator seed")
		table  = flag.Int("table", 0, "render only this table (1-4)")
		figure = flag.Int("figure", 0, "render only this figure (8 or 9)")
		perDoc = flag.Int("nodes-per-doc", 13, "annotated nodes per document")
		asCSV  = flag.Bool("csv", false, "emit CSV instead of text tables")
	)
	flag.Parse()

	cfg := experiments.DefaultConfig()
	cfg.Seed = *seed
	cfg.NodesPerDoc = *perDoc
	r := experiments.NewRunner(cfg)

	all := *table == 0 && *figure == 0
	out := os.Stdout
	check := func(err error) {
		if err != nil {
			log.Fatal(err)
		}
	}

	if all && !*asCSV {
		fmt.Fprintf(out, "XSDF experimental run (seed=%d, %d annotated nodes)\n\n",
			*seed, r.TotalAnnotated())
	}
	if all || *table == 1 {
		if *asCSV {
			check(experiments.WriteTable1CSV(out, r.Table1()))
		} else {
			fmt.Fprintln(out, experiments.RenderTable1(r.Table1()))
		}
	}
	if all || *table == 2 {
		if *asCSV {
			check(experiments.WriteTable2CSV(out, r.Table2()))
		} else {
			fmt.Fprintln(out, experiments.RenderTable2(r.Table2()))
		}
	}
	if all || *table == 3 {
		if *asCSV {
			check(experiments.WriteTable3CSV(out, r.Table3()))
		} else {
			fmt.Fprintln(out, experiments.RenderTable3(r.Table3()))
		}
	}
	if (all || *table == 4) && !*asCSV {
		fmt.Fprintln(out, experiments.RenderTable4(experiments.Table4()))
	}
	if all || *figure == 8 {
		if *asCSV {
			check(experiments.WriteFigure8CSV(out, r.Figure8()))
		} else {
			fmt.Fprintln(out, experiments.RenderFigure8(r.Figure8()))
		}
	}
	if all || *figure == 9 {
		if *asCSV {
			check(experiments.WriteFigure9CSV(out, r.Figure9()))
		} else {
			fmt.Fprintln(out, experiments.RenderFigure9(r.Figure9()))
		}
	}
}
