// Command xsdf-explain prints the full scoring breakdown for one target
// label in the corpus: every candidate sense's concept-based score and, per
// context node, the best-matching context sense with its per-measure
// similarity components. A calibration aid:
//
//	xsdf-explain -label book -dataset 5 -d 1
package main

import (
	"flag"
	"fmt"

	"repro/internal/disambig"
	"repro/internal/experiments"
	"repro/internal/semnet"
	"repro/internal/simmeasure"
	"repro/internal/sphere"
)

func main() {
	var (
		seed    = flag.Int64("seed", 42, "corpus seed")
		label   = flag.String("label", "", "target label to explain")
		dataset = flag.Int("dataset", 0, "restrict to one dataset (0 = all)")
		radius  = flag.Int("d", 1, "sphere radius")
		limit   = flag.Int("limit", 1, "number of target nodes to explain")
	)
	flag.Parse()

	cfg := experiments.DefaultConfig()
	cfg.Seed = *seed
	r := experiments.NewRunner(cfg)
	net := r.Network()
	sim := simmeasure.New(net, simmeasure.EqualWeights())

	shown := 0
	for i, doc := range r.Docs() {
		if *dataset != 0 && doc.Dataset != *dataset {
			continue
		}
		for _, n := range r.Selected(i) {
			if n.Label != *label || shown >= *limit {
				continue
			}
			shown++
			fmt.Printf("=== %s in %s (gold %s, depth %d)\n", n.Label, doc.Name, n.Gold, n.Depth)
			members := sphere.Sphere(n, *radius)
			voc := sphere.NewDict(net)
			vec := sphere.ContextVector(n, *radius, voc)
			fmt.Printf("sphere (d=%d): ", *radius)
			for _, m := range members {
				if m.Node != n {
					fmt.Printf("%s@%d ", m.Node.Label, m.Dist)
				}
			}
			fmt.Println()
			tokens := n.Tokens
			if len(tokens) == 0 {
				tokens = []string{n.Label}
			}
			for _, t := range tokens {
				for _, sp := range net.Senses(t) {
					var total float64
					fmt.Printf("  candidate %-16s", sp)
					details := ""
					for _, m := range members {
						if m.Node == n {
							continue
						}
						ctoks := m.Node.Tokens
						if len(ctoks) == 0 {
							ctoks = []string{m.Node.Label}
						}
						var bestV float64
						var bestS semnet.ConceptID
						cnt := 0
						var sum float64
						for _, ct := range ctoks {
							senses := net.Senses(ct)
							if len(senses) == 0 {
								continue
							}
							b := 0.0
							var bs semnet.ConceptID
							for _, sj := range senses {
								if v := sim.Sim(sp, sj); v > b {
									b, bs = v, sj
								}
							}
							sum += b
							cnt++
							if b > bestV {
								bestV, bestS = b, bs
							}
						}
						if cnt == 0 {
							continue
						}
						avg := sum / float64(cnt)
						w := vec.At(voc, m.Node.Label)
						total += avg * w
						if avg*w > 0.004 && bestS != sp {
							details += fmt.Sprintf("    %-14s via %-16s sim=%.3f w=%.3f (edge=%.2f node=%.2f gloss=%.2f)\n",
								m.Node.Label, bestS, avg, w,
								simmeasure.Edge(net, sp, bestS),
								simmeasure.NodeIC(net, sp, bestS),
								simmeasure.Gloss(net, sp, bestS))
						}
					}
					total /= float64(len(members))
					fmt.Printf(" score=%.4f\n%s", total, details)
				}
			}
			dis := disambig.New(net, disambig.Options{Radius: *radius, Method: disambig.ConceptBased, SimWeights: simmeasure.EqualWeights()})
			if s, ok := dis.Node(n); ok {
				fmt.Printf("  -> chosen: %s (%.4f)\n", s.ID(), s.Score)
			}
		}
	}
}
