// Command xsdf-tune searches the disambiguation parameter space for the
// configuration maximizing f-measure on a held-out split of the synthetic
// corpus — the optimization capability the paper defers to future work
// (§3.3, §5):
//
//	xsdf-tune                    # grid search, full corpus
//	xsdf-tune -dataset 2         # tune for one dataset
//	xsdf-tune -strategy descent  # greedy coordinate descent
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/corpus"
	"repro/internal/disambig"
	"repro/internal/lingproc"
	"repro/internal/tuning"
	"repro/internal/wordnet"
	"repro/internal/xmltree"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("xsdf-tune: ")
	var (
		seed     = flag.Int64("seed", 42, "corpus seed")
		dataset  = flag.Int("dataset", 0, "tune against one dataset only (0 = all)")
		strategy = flag.String("strategy", "grid", "grid | descent")
		passes   = flag.Int("passes", 4, "max coordinate-descent passes")
	)
	flag.Parse()

	net := wordnet.Default()
	var train, validate []*xmltree.Tree
	for i, d := range corpus.Generate(*seed) {
		if *dataset != 0 && d.Dataset != *dataset {
			continue
		}
		lingproc.ProcessTree(d.Tree, net)
		// Alternate documents between train and validation splits.
		if i%2 == 0 {
			train = append(train, d.Tree)
		} else {
			validate = append(validate, d.Tree)
		}
	}
	if len(train) == 0 || len(validate) == 0 {
		log.Fatal("empty split; check -dataset")
	}
	trainEval := tuning.NewEvaluator(net, train)
	valEval := tuning.NewEvaluator(net, validate)
	fmt.Printf("training on %d nodes, validating on %d nodes\n", trainEval.Len(), valEval.Len())

	seedOpts := disambig.DefaultOptions()
	var res tuning.Result
	switch *strategy {
	case "grid":
		res = tuning.GridSearch(seedOpts, tuning.DefaultSpace(), trainEval.FMeasure)
	case "descent":
		res = tuning.CoordinateDescent(seedOpts, tuning.DefaultSpace(), trainEval.FMeasure, *passes)
	default:
		log.Fatalf("unknown strategy %q", *strategy)
	}

	fmt.Printf("evaluated %d configurations\n", res.Evaluated)
	fmt.Printf("best on train:      F=%.3f  %s\n", res.Score, tuning.Describe(res.Options))
	fmt.Printf("seed on train:      F=%.3f  %s\n", trainEval.FMeasure(seedOpts), tuning.Describe(seedOpts))
	fmt.Printf("best on validation: F=%.3f\n", valEval.FMeasure(res.Options))
	fmt.Printf("seed on validation: F=%.3f\n", valEval.FMeasure(seedOpts))
}
