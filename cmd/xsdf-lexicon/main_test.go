package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/semnet"
	"repro/internal/wordnet"
)

// TestPackVerifyLoadRoundTrip is the -export → -verify → -load contract:
// an exported file verifies clean, loads back to an equivalent network
// through both the strict checksummed reader and the lenient -load path,
// and a corrupted copy is rejected by -verify's machinery.
func TestPackVerifyLoadRoundTrip(t *testing.T) {
	orig := wordnet.Default()
	path := filepath.Join(t.TempDir(), "lexicon.semnet")

	info, err := semnet.WriteFile(path, orig, "roundtrip-1")
	if err != nil {
		t.Fatal(err)
	}
	if info.Version != "roundtrip-1" || info.Concepts != orig.Len() {
		t.Errorf("export info %+v", info)
	}

	vinfo, err := semnet.VerifyFile(path)
	if err != nil {
		t.Fatalf("verify: %v", err)
	}
	if vinfo != info {
		t.Errorf("verify info %+v, export recorded %+v", vinfo, info)
	}

	// The strict reader and the lenient -load path agree on the content.
	strict, rinfo, err := semnet.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if rinfo.Checksum != info.Checksum {
		t.Errorf("read checksum %q, wrote %q", rinfo.Checksum, info.Checksum)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	lenient, err := semnet.Load(f)
	f.Close()
	if err != nil {
		t.Fatalf("-load path rejects a footered export: %v", err)
	}
	for _, net := range []*semnet.Network{strict, lenient} {
		if net.Len() != orig.Len() {
			t.Fatalf("round-trip lost concepts: %d != %d", net.Len(), orig.Len())
		}
		if err := net.Validate(); err != nil {
			t.Fatalf("round-tripped network invalid: %v", err)
		}
	}

	// A corrupted copy must fail -verify.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	bad := filepath.Join(t.TempDir(), "bad.semnet")
	if err := os.WriteFile(bad, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := semnet.VerifyFile(bad); err == nil {
		t.Error("verify accepted a truncated file")
	} else if !strings.Contains(err.Error(), "malformed") {
		t.Errorf("truncation error %v is not typed as malformed input", err)
	}
}
