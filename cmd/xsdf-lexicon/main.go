// Command xsdf-lexicon inspects and exports the embedded mini-WordNet:
//
//	xsdf-lexicon -stats                     # size, polysemy, relation counts
//	xsdf-lexicon -senses star               # list senses of a word
//	xsdf-lexicon -path actor.n.01,rock.n.01 # taxonomic path between concepts
//	xsdf-lexicon -export lexicon.semnet     # write the checksummed interchange format
//	xsdf-lexicon -export f -version oewn-24 # label the snapshot for hot-swap dashboards
//	xsdf-lexicon -verify lexicon.semnet     # checksum + structural validation
//	xsdf-lexicon -load my.semnet -senses x  # inspect a custom network
//
// -export writes crash-safely (temp file + fsync + atomic rename) with a
// checksum footer, so a file that exists is always complete, and -verify
// (or a daemon reload) rejects any truncation or corruption in transit.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"strings"

	"repro/internal/semnet"
	"repro/internal/wordnet"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("xsdf-lexicon: ")
	var (
		stats    = flag.Bool("stats", false, "print network statistics")
		senses   = flag.String("senses", "", "list the senses of a word or expression")
		path     = flag.String("path", "", "comma-separated concept pair: print the taxonomic path")
		export   = flag.String("export", "", "write the network in the checksummed interchange format (crash-safe)")
		version  = flag.String("version", "", "version label to record in -export's checksum footer (default: checksum-derived)")
		verify   = flag.String("verify", "", "verify a lexicon file: checksum footer + structural validation")
		loadPath = flag.String("load", "", "operate on a network file instead of the embedded lexicon")
	)
	flag.Parse()

	if *verify != "" {
		info, err := semnet.VerifyFile(*verify)
		if err != nil {
			log.Fatalf("%s: %v", *verify, err)
		}
		fmt.Printf("file:      %s\n", *verify)
		fmt.Printf("version:   %s\n", info.Version)
		fmt.Printf("checksum:  %s\n", info.Checksum)
		fmt.Printf("concepts:  %d\n", info.Concepts)
		fmt.Println("ok")
		return
	}

	net := wordnet.Default()
	if *loadPath != "" {
		f, err := os.Open(*loadPath)
		if err != nil {
			log.Fatal(err)
		}
		net, err = semnet.Load(f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
	}

	ran := false
	if *stats {
		ran = true
		printStats(net)
	}
	if *senses != "" {
		ran = true
		printSenses(net, *senses)
	}
	if *path != "" {
		ran = true
		parts := strings.SplitN(*path, ",", 2)
		if len(parts) != 2 {
			log.Fatal("-path wants two comma-separated concept ids")
		}
		printPath(net, semnet.ConceptID(strings.TrimSpace(parts[0])), semnet.ConceptID(strings.TrimSpace(parts[1])))
	}
	if *export != "" {
		ran = true
		info, err := semnet.WriteFile(*export, net, *version)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %d concepts to %s (version %s, sha256 %s)\n",
			info.Concepts, *export, info.Version, info.Checksum)
	}
	if !ran {
		printStats(net)
	}
}

func printStats(net *semnet.Network) {
	fmt.Printf("concepts:      %d\n", net.Len())
	fmt.Printf("lemmas:        %d\n", len(net.Lemmas()))
	fmt.Printf("max polysemy:  %d\n", net.MaxPolysemy())
	fmt.Printf("max depth:     %d\n", net.MaxDepth())
	fmt.Printf("total freq:    %.0f\n", net.TotalFreq())

	// Polysemy histogram over lemmas.
	hist := map[int]int{}
	maxP := 0
	for _, l := range net.Lemmas() {
		p := net.PolysemyOf(l)
		hist[p]++
		if p > maxP {
			maxP = p
		}
	}
	fmt.Println("polysemy histogram (senses: lemmas):")
	keys := make([]int, 0, len(hist))
	for k := range hist {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	for _, k := range keys {
		fmt.Printf("  %2d: %d\n", k, hist[k])
	}
}

func printSenses(net *semnet.Network, word string) {
	ids := net.Senses(word)
	if len(ids) == 0 {
		fmt.Printf("%q: no senses\n", word)
		return
	}
	fmt.Printf("%q has %d sense(s):\n", word, len(ids))
	for i, id := range ids {
		c := net.Concept(id)
		fmt.Printf("  %d. %-18s (%s)  %s\n", i+1, id, strings.Join(c.Lemmas, ", "), c.Gloss)
	}
}

func printPath(net *semnet.Network, a, b semnet.ConceptID) {
	path, ok := net.PathBetween(a, b)
	if !ok {
		fmt.Printf("no taxonomic path between %s and %s\n", a, b)
		return
	}
	for i, id := range path {
		pad := strings.Repeat("  ", i)
		fmt.Printf("%s%s\n", pad, id)
	}
}
