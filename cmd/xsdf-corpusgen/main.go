// Command xsdf-corpusgen materializes the synthetic test corpus (Table 3)
// to disk as XML files, one directory per dataset, plus a gold.tsv with the
// ground-truth sense of every annotated node:
//
//	xsdf-corpusgen -out ./corpus -seed 42
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"repro/internal/corpus"
	"repro/internal/dtd"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("xsdf-corpusgen: ")
	var (
		out  = flag.String("out", "corpus", "output directory")
		seed = flag.Int64("seed", 42, "generation seed")
	)
	flag.Parse()

	docs := corpus.Generate(*seed)
	// Emit each dataset's DTD next to its documents and validate every
	// generated document against it.
	gold, err := os.Create(filepath.Join(mkdir(*out), "gold.tsv"))
	if err != nil {
		log.Fatal(err)
	}
	defer gold.Close()
	fmt.Fprintln(gold, "doc\tnode_index\traw\tgold_concept")

	for _, d := range docs {
		dir := mkdir(filepath.Join(*out, fmt.Sprintf("dataset-%02d", d.Dataset)))
		if g, ok := dtd.Grammars[d.Grammar]; ok {
			if err := g.Validate(d.Tree); err != nil {
				log.Fatalf("%s does not conform to %s: %v", d.Name, d.Grammar, err)
			}
		}
		path := filepath.Join(dir, d.Name+".xml")
		f, err := os.Create(path)
		if err != nil {
			log.Fatal(err)
		}
		if err := d.Tree.WriteXML(f, false); err != nil {
			log.Fatal(err)
		}
		f.Close()
		for _, n := range d.Tree.Nodes() {
			if n.Gold != "" {
				fmt.Fprintf(gold, "%s\t%d\t%s\t%s\n", d.Name, n.Index, n.Raw, n.Gold)
			}
		}
	}
	log.Printf("wrote %d documents under %s", len(docs), *out)
}

func mkdir(dir string) string {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		log.Fatal(err)
	}
	return dir
}
