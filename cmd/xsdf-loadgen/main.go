// Command xsdf-loadgen is the open-loop load harness for xsdfd: it fires
// requests at a constant arrival rate — arrivals do NOT wait for earlier
// responses, so the server cannot hide overload by slowing its clients
// down — and reports what came back: latency percentiles, throughput, the
// degraded-rate (the ladder absorbing pressure), and the shed-rate (the
// admission gate and breaker refusing what would not fit).
//
//	xsdf-loadgen -url http://localhost:8080 -rate 200 -duration 30s
//	xsdf-loadgen -url http://localhost:8080 -factor 2 -duration 30s   # 2x measured saturation
//	xsdf-loadgen -url http://localhost:8080 -rate 50 -stream -out BENCH_stream.json
//	xsdf-loadgen -url http://localhost:8080 -rate 50 -subtree          # subtree-mode stream phase
//
// With -rate 0 the harness first calibrates: a short closed-loop phase
// measures the server's saturation throughput, and the open-loop phase
// then runs at -factor times it — the sustained-overload experiment.
//
// Every response must be accounted for: a 200 (full or degraded), a shed
// 429 carrying Retry-After and the overloaded kind, a breaker fast-fail
// (503 circuit-open), or another typed error from the xsdferrors
// taxonomy. Transport failures, undecodable bodies, and unknown kinds
// count as lost — and lost documents fail the run (-max-lost, default 0),
// as does a p99 above -check-p99-ms when set. With -check-metrics the
// harness also scrapes GET /metricsz mid-run and validates the
// exposition: parseable Prometheus text, histogram invariants intact,
// and stage-latency counts actually moving under load.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"repro"
	"repro/internal/corpus"
	"repro/internal/metrics"
	"repro/internal/server"
	"repro/internal/server/client"
)

// typedKinds is the closed set of error kinds a healthy deployment may
// answer with; anything else is an accounting failure.
var typedKinds = map[string]bool{
	"degraded": true, "overloaded": true, "panic": true, "limit": true,
	"malformed-input": true, "unknown-option": true, "canceled": true,
	"internal": true, "circuit-open": true, "injected": true,
}

// LatencyReport is the percentile summary of one phase's response times.
type LatencyReport struct {
	P50MS float64 `json:"p50_ms"`
	P95MS float64 `json:"p95_ms"`
	P99MS float64 `json:"p99_ms"`
	MaxMS float64 `json:"max_ms"`
}

// UnaryReport is the open-loop phase's account.
type UnaryReport struct {
	Sent          int64            `json:"sent"`
	OKFull        int64            `json:"ok_full"`
	OKDegraded    int64            `json:"ok_degraded"`
	Shed          int64            `json:"shed"`
	BreakerReject int64            `json:"breaker_rejected"`
	TypedErrors   map[string]int64 `json:"typed_errors,omitempty"`
	Lost          int64            `json:"lost"`
	ThroughputRPS float64          `json:"throughput_rps"`
	DegradedRate  float64          `json:"degraded_rate"`
	ShedRate      float64          `json:"shed_rate"`
	Latency       LatencyReport    `json:"latency"`
}

// StreamReport is the streaming phase's account. In subtree mode one
// line arrives per subtree rather than per document, and ExpectedLines
// is the locally-scanned ground truth Delivered must match.
type StreamReport struct {
	Documents     int     `json:"documents"`
	SubtreeMode   bool    `json:"subtree_mode,omitempty"`
	ExpectedLines int64   `json:"expected_lines,omitempty"`
	Delivered     int64   `json:"delivered"`
	Degraded      int64   `json:"degraded"`
	TypedLines    int64   `json:"typed_error_lines"`
	Lost          int64   `json:"lost"`
	Resumes       int     `json:"resumes"`
	Attempts      int     `json:"attempts"`
	DurationMS    float64 `json:"duration_ms"`
}

// Report is the BENCH_stream.json schema.
type Report struct {
	URL           string        `json:"url"`
	Seed          int64         `json:"seed"`
	BudgetMS      int64         `json:"budget_ms"`
	DurationS     float64       `json:"duration_s"`
	RateRPS       float64       `json:"rate_rps"`
	SaturationRPS float64       `json:"saturation_rps,omitempty"`
	Factor        float64       `json:"factor,omitempty"`
	Unary         UnaryReport   `json:"unary"`
	Stream        *StreamReport `json:"stream,omitempty"`
	Violations    []string      `json:"violations,omitempty"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("xsdf-loadgen: ")
	var (
		url        = flag.String("url", "http://localhost:8080", "base URL of the xsdfd daemon under load")
		rate       = flag.Float64("rate", 0, "open-loop arrival rate in req/s (0 = calibrate saturation, run at -factor times it)")
		factor     = flag.Float64("factor", 2, "overload factor applied to the calibrated saturation rate")
		calDur     = flag.Duration("calibrate-duration", 5*time.Second, "closed-loop calibration phase length")
		duration   = flag.Duration("duration", 30*time.Second, "open-loop phase length")
		budgetMS   = flag.Int64("budget-ms", 250, "per-request budget forwarded to the server")
		seed       = flag.Int64("seed", 42, "workload mix seed (corpus generation and document order)")
		out        = flag.String("out", "", "write the JSON report here as well as stdout")
		doStream   = flag.Bool("stream", false, "also run a resumable streaming phase over /v1/stream")
		doSubtree  = flag.Bool("subtree", false, "run the streaming phase in subtree mode (one NDJSON line per subtree)")
		checkP99MS = flag.Float64("check-p99-ms", 0, "fail the run when the unary p99 exceeds this (0 = no check)")
		maxLost    = flag.Int64("max-lost", 0, "fail the run when more than this many responses are lost/untyped")
		checkMx    = flag.Bool("check-metrics", false, "scrape /metricsz mid-run and fail on an invalid or idle exposition")
	)
	flag.Parse()

	docs := workload(*seed)
	log.Printf("workload: %d documents from the seeded corpus mix", len(docs))

	hc := &http.Client{
		Timeout: time.Duration(*budgetMS)*time.Millisecond*4 + 5*time.Second,
		Transport: &http.Transport{
			MaxIdleConns:        512,
			MaxIdleConnsPerHost: 512,
		},
	}

	rep := Report{URL: *url, Seed: *seed, BudgetMS: *budgetMS, DurationS: duration.Seconds()}
	if *rate <= 0 {
		rep.SaturationRPS = calibrate(hc, *url, docs, *budgetMS, *calDur)
		rep.Factor = *factor
		*rate = rep.SaturationRPS * *factor
		if *rate <= 0 {
			log.Fatalf("calibration measured no throughput; is %s serving?", *url)
		}
		log.Printf("calibrated saturation %.1f req/s; open-loop at %.1fx = %.1f req/s",
			rep.SaturationRPS, *factor, *rate)
	}
	rep.RateRPS = *rate

	// The metrics scrape runs mid-load: half the open-loop duration in, so
	// the exposition is read while counters are actively moving — the
	// concurrency case a quiet scrape would never exercise.
	metricsErr := make(chan []string, 1)
	if *checkMx {
		go func() {
			time.Sleep(*duration / 2)
			metricsErr <- checkMetrics(hc, *url)
		}()
	}

	rep.Unary = openLoop(hc, *url, docs, *budgetMS, *rate, *duration, *seed)
	if *checkMx {
		rep.Violations = append(rep.Violations, <-metricsErr...)
	}
	if *doStream || *doSubtree {
		sr := streamPhase(*url, docs, *budgetMS, *seed, *doSubtree)
		rep.Stream = &sr
	}

	// The pass/fail gate: untyped or lost responses are protocol failures,
	// and an unbounded p99 means overload leaked past the shedding layers.
	if rep.Unary.Lost > *maxLost {
		rep.Violations = append(rep.Violations,
			fmt.Sprintf("lost %d unary responses (max %d): untyped or undelivered under load", rep.Unary.Lost, *maxLost))
	}
	if *checkP99MS > 0 && rep.Unary.Latency.P99MS > *checkP99MS {
		rep.Violations = append(rep.Violations,
			fmt.Sprintf("unary p99 %.1fms exceeds bound %.1fms", rep.Unary.Latency.P99MS, *checkP99MS))
	}
	if rep.Stream != nil && rep.Stream.Lost > 0 {
		rep.Violations = append(rep.Violations,
			fmt.Sprintf("stream lost %d documents (want exactly-once delivery)", rep.Stream.Lost))
	}

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	buf = append(buf, '\n')
	os.Stdout.Write(buf)
	if *out != "" {
		if err := os.WriteFile(*out, buf, 0o644); err != nil {
			log.Fatalf("writing %s: %v", *out, err)
		}
		log.Printf("report written to %s", *out)
	}
	if len(rep.Violations) > 0 {
		log.Fatalf("FAIL: %d violation(s): %v", len(rep.Violations), rep.Violations)
	}
	log.Printf("PASS: p99 %.1fms, %.1f req/s served, %.0f%% degraded, %.0f%% shed",
		rep.Unary.Latency.P99MS, rep.Unary.ThroughputRPS,
		100*rep.Unary.DegradedRate, 100*rep.Unary.ShedRate)
}

// checkMetrics scrapes /metricsz and returns violations: an unreachable
// or malformed exposition (the strict parser also enforces the histogram
// invariants), or stage-latency histograms that saw no traffic even
// though the open loop is firing.
func checkMetrics(hc *http.Client, url string) (violations []string) {
	resp, err := hc.Get(url + "/metricsz")
	if err != nil {
		return []string{fmt.Sprintf("metricsz scrape failed: %v", err)}
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return []string{fmt.Sprintf("metricsz status %d, want 200", resp.StatusCode)}
	}
	fams, err := metrics.Parse(resp.Body)
	if err != nil {
		return []string{fmt.Sprintf("metricsz exposition invalid: %v", err)}
	}
	for _, name := range []string{
		"xsdf_stage_duration_seconds", "xsdf_http_requests_total", "xsdf_http_responses_total",
	} {
		if _, ok := fams[name]; !ok {
			violations = append(violations, fmt.Sprintf("metricsz family %s missing", name))
		}
	}
	if fam, ok := fams["xsdf_stage_duration_seconds"]; ok {
		var observed float64
		for _, smp := range fam.Samples {
			if len(smp.Name) > 6 && smp.Name[len(smp.Name)-6:] == "_count" {
				observed += smp.Value
			}
		}
		if observed == 0 {
			violations = append(violations, "metricsz stage histograms idle mid-load (no stage observed any latency)")
		}
	}
	if len(violations) == 0 {
		log.Printf("metricsz mid-load scrape: %d families, exposition valid", len(fams))
	}
	return violations
}

// workload serializes the seeded corpus (60 documents over 10 DTDs) into
// the raw XML mix every phase draws from.
func workload(seed int64) []string {
	gen := corpus.Generate(seed)
	docs := make([]string, len(gen))
	for i, d := range gen {
		var buf bytes.Buffer
		if err := d.Tree.WriteXML(&buf, false); err != nil {
			log.Fatalf("serializing corpus doc %d: %v", i, err)
		}
		docs[i] = buf.String()
	}
	return docs
}

// calibrate measures saturation throughput with a small closed loop: a
// few workers re-request as fast as the server answers, so completions
// per second approximate the service capacity.
func calibrate(hc *http.Client, url string, docs []string, budgetMS int64, dur time.Duration) float64 {
	const workers = 4
	log.Printf("calibrating: %d closed-loop workers for %v", workers, dur)
	deadline := time.Now().Add(dur)
	var completed int64
	var mu sync.Mutex
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; time.Now().Before(deadline); i++ {
				status, _, _, err := postOne(hc, url, docs[i%len(docs)], budgetMS)
				if err == nil && status == http.StatusOK {
					mu.Lock()
					completed++
					mu.Unlock()
				}
			}
		}(w)
	}
	wg.Wait()
	return float64(completed) / time.Since(start).Seconds()
}

// openLoop fires requests at the constant arrival rate for the duration
// and accounts for every response.
func openLoop(hc *http.Client, url string, docs []string, budgetMS int64, rate float64, dur time.Duration, seed int64) UnaryReport {
	interval := time.Duration(float64(time.Second) / rate)
	if interval <= 0 {
		interval = time.Microsecond
	}
	log.Printf("open loop: %.1f req/s for %v (one arrival every %v)", rate, dur, interval)

	rep := UnaryReport{TypedErrors: map[string]int64{}}
	var mu sync.Mutex
	var latencies []float64
	var wg sync.WaitGroup
	rng := rand.New(rand.NewSource(seed))

	fire := func(doc string) {
		defer wg.Done()
		start := time.Now()
		status, kind, retryAfter, err := postOne(hc, url, doc, budgetMS)
		elapsed := float64(time.Since(start).Microseconds()) / 1e3
		mu.Lock()
		defer mu.Unlock()
		if err != nil {
			rep.Lost++ // transport failure or undecodable body
			return
		}
		latencies = append(latencies, elapsed)
		switch {
		case status == http.StatusOK && kind == "full":
			rep.OKFull++
		case status == http.StatusOK:
			rep.OKDegraded++
		case status == http.StatusTooManyRequests && kind == "overloaded" && retryAfter:
			rep.Shed++
		case status == http.StatusServiceUnavailable && kind == "circuit-open":
			rep.BreakerReject++
		case typedKinds[kind]:
			rep.TypedErrors[kind]++
		default:
			rep.Lost++ // untyped failure: protocol violation under load
		}
	}

	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	deadline := time.Now().Add(dur)
	start := time.Now()
	for now := range ticker.C {
		if now.After(deadline) {
			break
		}
		rep.Sent++
		wg.Add(1)
		go fire(docs[rng.Intn(len(docs))])
	}
	wg.Wait()
	elapsed := time.Since(start).Seconds()

	sort.Float64s(latencies)
	rep.Latency = percentiles(latencies)
	served := rep.OKFull + rep.OKDegraded
	rep.ThroughputRPS = float64(served) / elapsed
	if served > 0 {
		rep.DegradedRate = float64(rep.OKDegraded) / float64(served)
	}
	if rep.Sent > 0 {
		rep.ShedRate = float64(rep.Shed+rep.BreakerReject) / float64(rep.Sent)
	}
	return rep
}

// postOne sends one unary request and classifies the answer. kind is
// "full" or the quality rung for 200s, the taxonomy kind otherwise;
// retryAfter reports whether the response carried the header.
func postOne(hc *http.Client, url, doc string, budgetMS int64) (status int, kind string, retryAfter bool, err error) {
	payload, err := json.Marshal(server.DisambiguateRequest{Document: doc, BudgetMS: budgetMS})
	if err != nil {
		return 0, "", false, err
	}
	resp, err := hc.Post(url+"/v1/disambiguate", "application/json", bytes.NewReader(payload))
	if err != nil {
		return 0, "", false, err
	}
	defer resp.Body.Close()
	retryAfter = resp.Header.Get("Retry-After") != ""
	if resp.StatusCode == http.StatusOK {
		var res server.Result
		if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
			return resp.StatusCode, "", retryAfter, err
		}
		if res.Quality == "" {
			res.Quality = "full"
		}
		return resp.StatusCode, res.Quality, retryAfter, nil
	}
	var eb server.ErrorBody
	if err := json.NewDecoder(resp.Body).Decode(&eb); err != nil {
		return resp.StatusCode, "", retryAfter, err
	}
	return resp.StatusCode, eb.Kind, retryAfter, nil
}

// streamPhase runs the whole workload through one resumable stream and
// accounts for every line. In subtree mode each document unrolls into
// one line per subtree; the expected line count is established by
// scanning the workload locally, so delivery is checked against ground
// truth rather than trusting the server's own accounting.
func streamPhase(url string, docs []string, budgetMS int64, seed int64, subtree bool) StreamReport {
	mode := "document"
	if subtree {
		mode = "subtree"
	}
	log.Printf("stream phase: %d documents through /v1/stream (%s mode)", len(docs), mode)
	c, err := client.New(client.Options{
		BaseURL:    url,
		MaxRetries: 10,
		JitterSeed: seed,
	})
	if err != nil {
		log.Fatalf("stream client: %v", err)
	}
	rep := StreamReport{Documents: len(docs), SubtreeMode: subtree}
	rep.ExpectedLines = int64(len(docs))
	if subtree {
		rep.ExpectedLines = countSubtrees(docs)
	}
	start := time.Now()
	stats, err := c.Stream(context.Background(), docs,
		client.StreamOptions{
			Budget:  time.Duration(budgetMS) * time.Millisecond,
			Subtree: subtree,
		},
		func(line server.StreamLine) error {
			switch {
			case line.Status == http.StatusOK && line.Result != nil:
				if line.Result.Quality != "full" {
					rep.Degraded++
				}
			case typedKinds[line.Kind]:
				rep.TypedLines++
			default:
				rep.Lost++
			}
			return nil
		})
	rep.DurationMS = float64(time.Since(start).Microseconds()) / 1e3
	rep.Delivered = stats.Delivered
	rep.Resumes = stats.Resumes
	rep.Attempts = stats.Attempts
	if err != nil {
		log.Printf("stream phase error: %v", err)
	}
	if short := rep.ExpectedLines - stats.Delivered; short > 0 {
		rep.Lost += short
	}
	return rep
}

// countSubtrees scans the workload locally with the same scanner the
// server uses, establishing how many subtree lines a clean stream emits.
func countSubtrees(docs []string) int64 {
	fw, err := xsdf.New(xsdf.Options{})
	if err != nil {
		log.Fatalf("local scan framework: %v", err)
	}
	total := int64(0)
	for i, doc := range docs {
		sc := fw.SubtreeScanner(strings.NewReader(doc), xsdf.SubtreeOptions{})
		for {
			if _, err := sc.Next(); err != nil {
				if err != io.EOF {
					log.Fatalf("workload doc %d does not scan cleanly: %v", i, err)
				}
				break
			}
			total++
		}
	}
	return total
}

// percentiles summarizes a sorted latency slice.
func percentiles(sorted []float64) LatencyReport {
	if len(sorted) == 0 {
		return LatencyReport{}
	}
	at := func(p float64) float64 {
		i := int(p * float64(len(sorted)-1))
		return sorted[i]
	}
	return LatencyReport{
		P50MS: at(0.50),
		P95MS: at(0.95),
		P99MS: at(0.99),
		MaxMS: sorted[len(sorted)-1],
	}
}
