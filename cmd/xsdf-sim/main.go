// Command xsdf-sim compares two XML documents structurally, with and
// without semantics: it disambiguates both against the embedded lexicon and
// reports the tree-edit similarity under syntactic label costs (labels must
// match exactly) and under semantic costs (concept similarity prices
// renames). Heterogeneous documents describing the same content — the
// paper's Figure 1 scenario — score much higher semantically.
//
//	xsdf-sim doc1.xml doc2.xml
//	xsdf-sim -d 2 doc1.xml doc2.xml
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro"
	"repro/internal/xmlsim"
	"repro/internal/xmltree"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("xsdf-sim: ")
	radius := flag.Int("d", 2, "sphere radius for disambiguation")
	flag.Parse()
	if flag.NArg() != 2 {
		log.Fatal("usage: xsdf-sim [flags] <doc1.xml> <doc2.xml>")
	}

	fw, err := xsdf.New(xsdf.Options{Radius: *radius})
	if err != nil {
		log.Fatal(err)
	}
	load := func(path string) *xmltree.Tree {
		f, err := os.Open(path)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		res, err := fw.Disambiguate(f)
		if err != nil {
			log.Fatalf("%s: %v", path, err)
		}
		return res.Tree
	}
	a := load(flag.Arg(0))
	b := load(flag.Arg(1))

	syn := xmlsim.Similarity(a, b, xmlsim.SyntacticCosts{})
	sem := xmlsim.Similarity(a, b, xmlsim.NewSemanticCosts(fw.Network()))

	fmt.Printf("%-32s %d nodes\n", flag.Arg(0), a.Len())
	fmt.Printf("%-32s %d nodes\n", flag.Arg(1), b.Len())
	fmt.Printf("syntactic similarity: %.3f\n", syn)
	fmt.Printf("semantic similarity:  %.3f\n", sem)
	switch {
	case sem-syn > 0.1:
		fmt.Println("verdict: the documents are much closer semantically than their tagging suggests")
	case sem > 0.8:
		fmt.Println("verdict: the documents are near duplicates")
	default:
		fmt.Println("verdict: the documents differ in structure and meaning")
	}
}
