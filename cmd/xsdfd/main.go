// Command xsdfd serves XSDF disambiguation over HTTP against the embedded
// mini-WordNet (or the same pipeline options the xsdf CLI exposes):
//
//	xsdfd -addr :8080
//	xsdfd -addr :8080 -d 2 -method combined -degrade
//	xsdfd -addr :8080 -max-docs 8 -max-wait 100ms      # admission gate
//
// Endpoints (see internal/server):
//
//	POST /v1/disambiguate   {"document": "<a>...</a>", "budget_ms": 100}
//	POST /v1/batch          {"documents": ["...", "..."]}
//	POST /v1/stream         NDJSON in (header line + one document per
//	                        line), NDJSON out (one cursor-stamped result
//	                        line per document, resumable via resume_from)
//	POST /adminz/reload     {"path": "...", "expected_checksum": "..."} —
//	                        zero-downtime lexicon hot-swap (SIGHUP re-swaps
//	                        the -lexicon file the same way)
//	GET  /healthz  /readyz  /statusz
//
// The daemon is built to stay up: per-request deadlines (client budgets
// clamped by -max-timeout), request body limits, panic recovery, a
// per-route circuit breaker, typed status codes (429 + Retry-After under
// overload, 200 + X-Xsdf-Quality for degraded results), and graceful
// drain — SIGTERM/SIGINT flips /readyz to 503, refuses new connections,
// finishes every in-flight request, and exits 0; in-flight work that
// outlives -drain forces exit 1.
//
// Logs are structured (log/slog): one line per request carrying the
// trace ID (X-Request-Id), route, status, quality, and per-stage
// timings. -log-format selects text (default, human-readable) or json
// (one object per line, for log shippers); -log-level gates verbosity
// (probe-endpoint lines log at debug). GET /metricsz exposes the
// Prometheus metrics the same machinery aggregates.
package main

import (
	"context"
	"errors"
	"flag"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	xsdf "repro"
	"repro/internal/server"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		radius    = flag.Int("d", 1, "sphere neighborhood radius (context size)")
		method    = flag.String("method", "concept", "disambiguation process: concept | context | combined")
		threshold = flag.Float64("threshold", 0, "Thresh_Amb: only nodes with Amb_Deg >= threshold are disambiguated")
		vectorSim = flag.String("vector-sim", "cosine", "context-vector similarity: cosine | jaccard | pearson")
		degrade   = flag.Bool("degrade", true, "step down the quality ladder under deadline pressure instead of failing")
		maxDepth  = flag.Int("max-depth", 0, "element nesting limit (0 = default, -1 = unlimited)")
		maxNodes  = flag.Int("max-nodes", 0, "tree node-count limit (0 = default, -1 = unlimited)")

		maxDocs     = flag.Int("max-docs", 0, "admission gate: max in-flight documents (0 = ungated)")
		maxGateWait = flag.Duration("max-wait", 50*time.Millisecond, "admission gate: bounded wait for capacity before shedding")

		maxTimeout  = flag.Duration("max-timeout", 30*time.Second, "cap on any client-supplied request budget")
		defTimeout  = flag.Duration("default-timeout", 10*time.Second, "request budget when the client sends none")
		maxBody     = flag.Int64("max-body", 1<<20, "request body size limit in bytes (per line on /v1/stream)")
		concurrency = flag.Int("concurrency", 0, "max concurrent pipeline requests (0 = one per core)")
		drain       = flag.Duration("drain", 15*time.Second, "graceful-shutdown deadline for in-flight requests")

		streamWindow  = flag.Int("stream-window", 4, "max in-flight documents per /v1/stream request")
		streamTimeout = flag.Duration("stream-write-timeout", 10*time.Second, "per-line write deadline before a slow stream consumer is shed")

		lexicon = flag.String("lexicon", "", "checksummed lexicon codec file to serve (empty = embedded mini-WordNet); SIGHUP hot-swaps it in place")

		logFormat = flag.String("log-format", "text", "log output format: text | json")
		logLevel  = flag.String("log-level", "info", "minimum log level: debug | info | warn | error")
	)
	flag.Parse()

	logger, err := buildLogger(*logFormat, *logLevel)
	if err != nil {
		slog.Error("configuring logs", "error", err)
		os.Exit(2)
	}
	slog.SetDefault(logger)
	fatal := func(msg string, args ...any) {
		logger.Error(msg, args...)
		os.Exit(1)
	}

	opts := xsdf.Options{
		Radius:           *radius,
		Threshold:        *threshold,
		VectorSimilarity: *vectorSim,
		MaxDepth:         *maxDepth,
		MaxNodes:         *maxNodes,
		Degrade:          xsdf.DegradeOptions{Enabled: *degrade},
	}
	switch *method {
	case "concept":
		opts.Method = xsdf.ConceptBased
	case "context":
		opts.Method = xsdf.ContextBased
	case "combined":
		opts.Method = xsdf.Combined
	default:
		fatal("unknown method", "method", *method)
	}
	if *maxDocs > 0 {
		opts.Admission = xsdf.AdmissionOptions{MaxDocs: *maxDocs, MaxWait: *maxGateWait}
	}

	if *lexicon != "" {
		net, finfo, err := xsdf.ReadNetworkFile(*lexicon)
		if err != nil {
			fatal("loading lexicon", "path", *lexicon, "error", err)
		}
		opts.Network = net
		logger.Info("lexicon loaded",
			"path", *lexicon, "version", finfo.Version,
			"checksum", finfo.Checksum, "concepts", finfo.Concepts)
	}

	fw, err := xsdf.New(opts)
	if err != nil {
		fatal("building framework", "error", err)
	}
	srv, err := server.New(server.Config{
		Framework:          fw,
		MaxBodyBytes:       *maxBody,
		MaxTimeout:         *maxTimeout,
		DefaultTimeout:     *defTimeout,
		Concurrency:        *concurrency,
		StreamWindow:       *streamWindow,
		StreamWriteTimeout: *streamTimeout,
		Logger:             logger,
	})
	if err != nil {
		fatal("building server", "error", err)
	}

	// Serve in the background; the main goroutine owns the signal-driven
	// drain so SIGTERM always reaches a goroutine that can act on it.
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.ListenAndServe(*addr) }()
	logger.Info("serving",
		"addr", *addr, "method", *method, "radius", *radius, "degrade", *degrade)

	// SIGHUP hot-swaps the lexicon from -lexicon in place: the staged
	// reload (load → validate → canary → atomic swap) runs off the request
	// path, in-flight runs finish on their pinned snapshot, and any failure
	// rolls back to the serving lexicon — a bad file can never take the
	// daemon down or degrade live traffic.
	if *lexicon != "" {
		hup := make(chan os.Signal, 1)
		signal.Notify(hup, syscall.SIGHUP)
		go func() {
			for range hup {
				info, err := fw.Reload(context.Background(), *lexicon, xsdf.ReloadOptions{})
				if err != nil {
					logger.Warn("SIGHUP reload failed, old lexicon still serving",
						"path", *lexicon, "error", err, "serving_epoch", info.Epoch)
					continue
				}
				logger.Info("SIGHUP lexicon swapped",
					"path", *lexicon, "epoch", info.Epoch, "version", info.Version,
					"checksum", info.Checksum, "load_ms", info.LoadTime.Milliseconds())
			}
		}()
	}

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGTERM, os.Interrupt)
	select {
	case err := <-serveErr:
		// The listener died without a shutdown request (port in use, ...).
		fatal("serve", "error", err)
	case sig := <-sigs:
		logger.Info("draining", "signal", sig.String(), "deadline", drain.String())
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		fatal("drain deadline exceeded, connections abandoned", "error", err)
	}
	if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
		fatal("serve", "error", err)
	}
	// Final operational accounting: where this process spent its pipeline
	// time, one line per stage (mirrors the /statusz stages section).
	for _, st := range fw.StageStats() {
		if st.Calls == 0 {
			continue
		}
		logger.Info("stage totals",
			"stage", st.Stage, "calls", st.Calls, "errors", st.Errors,
			"items", st.Items, "total", st.Total.Round(time.Microsecond).String())
	}
	logger.Info("drained cleanly")
}

// buildLogger assembles the process logger from the -log-format and
// -log-level flags.
func buildLogger(format, level string) (*slog.Logger, error) {
	var lv slog.Level
	if err := lv.UnmarshalText([]byte(level)); err != nil {
		return nil, err
	}
	opts := &slog.HandlerOptions{Level: lv}
	switch format {
	case "text":
		return slog.New(slog.NewTextHandler(os.Stderr, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, opts)), nil
	default:
		return nil, errors.New("unknown -log-format " + format + " (want text or json)")
	}
}
