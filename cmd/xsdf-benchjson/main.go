// Command xsdf-benchjson converts `go test -bench` text output (stdin)
// into a stable JSON snapshot (stdout), so benchmark results can be
// committed and diffed across PRs:
//
//	go test -run - -bench BenchmarkPipelineBatch -benchmem . | xsdf-benchjson > BENCH_pipeline.json
//
// Only result lines are kept; the surrounding chatter (goos/goarch, PASS,
// timing) is folded into the metadata header.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// BenchResult is one parsed benchmark line.
type BenchResult struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
}

// Snapshot is the committed JSON schema.
type Snapshot struct {
	Goos    string        `json:"goos,omitempty"`
	Goarch  string        `json:"goarch,omitempty"`
	Pkg     string        `json:"pkg,omitempty"`
	CPU     string        `json:"cpu,omitempty"`
	Results []BenchResult `json:"results"`
}

func main() {
	var snap Snapshot
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 64<<10), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			snap.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			snap.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "pkg:"):
			snap.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "cpu:"):
			snap.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "Benchmark"):
			if r, ok := parseBenchLine(line); ok {
				snap.Results = append(snap.Results, r)
			}
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "xsdf-benchjson: reading stdin: %v\n", err)
		os.Exit(1)
	}
	if len(snap.Results) == 0 {
		fmt.Fprintln(os.Stderr, "xsdf-benchjson: no benchmark result lines on stdin")
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(snap); err != nil {
		fmt.Fprintf(os.Stderr, "xsdf-benchjson: %v\n", err)
		os.Exit(1)
	}
}

// parseBenchLine parses one `BenchmarkName-N  iters  12345 ns/op  ...`
// line; unparsable lines are skipped rather than fatal, so interleaved
// test log output cannot break the snapshot.
func parseBenchLine(line string) (BenchResult, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !hasUnit(fields, "ns/op") {
		return BenchResult{}, false
	}
	r := BenchResult{Name: fields[0]}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return BenchResult{}, false
	}
	r.Iterations = iters
	for i := 2; i+1 < len(fields); i += 2 {
		val := fields[i]
		switch fields[i+1] {
		case "ns/op":
			if v, err := strconv.ParseFloat(val, 64); err == nil {
				r.NsPerOp = v
			}
		case "B/op":
			if v, err := strconv.ParseInt(val, 10, 64); err == nil {
				r.BytesPerOp = v
			}
		case "allocs/op":
			if v, err := strconv.ParseInt(val, 10, 64); err == nil {
				r.AllocsPerOp = v
			}
		}
	}
	return r, r.NsPerOp > 0
}

// hasUnit reports whether any field equals the unit token.
func hasUnit(fields []string, unit string) bool {
	for _, f := range fields {
		if f == unit {
			return true
		}
	}
	return false
}
