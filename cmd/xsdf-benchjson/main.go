// Command xsdf-benchjson converts `go test -bench` text output (stdin)
// into a stable JSON snapshot (stdout), so benchmark results can be
// committed and diffed across PRs:
//
//	go test -run - -bench BenchmarkPipelineBatch -benchmem . | xsdf-benchjson > BENCH_pipeline.json
//
// Only result lines are kept; the surrounding chatter (goos/goarch, PASS,
// timing) is folded into the metadata header.
//
// With -check it becomes a regression gate instead: the fresh run on
// stdin is compared against a committed baseline snapshot, and the
// process exits non-zero when the gated benchmark's ns/op regressed by
// more than -max-regress (allocs/op is held to the same bound — an
// allocation regression is a latency regression waiting for a slower
// allocator):
//
//	go test -run - -bench BenchmarkPipelineBatch -benchmem . | \
//	    xsdf-benchjson -check BENCH_pipeline.json -bench BenchmarkPipelineBatch/shared-cache
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// BenchResult is one parsed benchmark line.
type BenchResult struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
}

// Snapshot is the committed JSON schema.
type Snapshot struct {
	Goos    string        `json:"goos,omitempty"`
	Goarch  string        `json:"goarch,omitempty"`
	Pkg     string        `json:"pkg,omitempty"`
	CPU     string        `json:"cpu,omitempty"`
	Results []BenchResult `json:"results"`
}

func main() {
	var (
		check      = flag.String("check", "", "baseline snapshot to compare against; exits 1 on regression")
		benchName  = flag.String("bench", "BenchmarkPipelineBatch/shared-cache", "benchmark gated by -check")
		maxRegress = flag.Float64("max-regress", 0.15, "allowed fractional ns/op (and allocs/op) regression for -check")
	)
	flag.Parse()

	snap, err := parseBenchOutput(os.Stdin)
	if err != nil {
		fmt.Fprintf(os.Stderr, "xsdf-benchjson: %v\n", err)
		os.Exit(1)
	}

	if *check != "" {
		if err := checkRegression(snap, *check, *benchName, *maxRegress); err != nil {
			fmt.Fprintf(os.Stderr, "xsdf-benchjson: %v\n", err)
			os.Exit(1)
		}
		return
	}

	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(snap); err != nil {
		fmt.Fprintf(os.Stderr, "xsdf-benchjson: %v\n", err)
		os.Exit(1)
	}
}

// parseBenchOutput folds a `go test -bench` text stream into a Snapshot.
func parseBenchOutput(r io.Reader) (Snapshot, error) {
	var snap Snapshot
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64<<10), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			snap.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			snap.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "pkg:"):
			snap.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "cpu:"):
			snap.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "Benchmark"):
			if res, ok := parseBenchLine(line); ok {
				snap.Results = append(snap.Results, res)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return snap, fmt.Errorf("reading stdin: %v", err)
	}
	if len(snap.Results) == 0 {
		return snap, fmt.Errorf("no benchmark result lines on stdin")
	}
	snap.Results = mergeRepeats(snap.Results)
	return snap, nil
}

// mergeRepeats folds `go test -count N` repetitions of one benchmark into
// a single entry holding the fastest run — the standard noise-robust
// statistic for regression gating (the minimum is the run least disturbed
// by scheduler and cache interference). Iterations are summed so the
// entry still records the total measurement effort.
func mergeRepeats(results []BenchResult) []BenchResult {
	merged := results[:0]
	byName := make(map[string]int, len(results))
	for _, r := range results {
		i, seen := byName[r.Name]
		if !seen {
			byName[r.Name] = len(merged)
			merged = append(merged, r)
			continue
		}
		best := &merged[i]
		best.Iterations += r.Iterations
		if r.NsPerOp < best.NsPerOp {
			best.NsPerOp = r.NsPerOp
		}
		if r.BytesPerOp < best.BytesPerOp {
			best.BytesPerOp = r.BytesPerOp
		}
		if r.AllocsPerOp < best.AllocsPerOp {
			best.AllocsPerOp = r.AllocsPerOp
		}
	}
	return merged
}

// checkRegression gates one benchmark of the fresh run against the
// committed baseline. The comparison is by ratio, so it tolerates the
// baseline and the run coming from different GOMAXPROCS suffixes (names
// are matched with the -N procs suffix stripped) but NOT from different
// hardware classes — re-record the baseline when the bench host changes.
func checkRegression(snap Snapshot, baselinePath, benchName string, maxRegress float64) error {
	data, err := os.ReadFile(baselinePath)
	if err != nil {
		return err
	}
	var base Snapshot
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("parsing %s: %v", baselinePath, err)
	}
	want, ok := findResult(base.Results, benchName)
	if !ok {
		return fmt.Errorf("baseline %s has no result for %s", baselinePath, benchName)
	}
	got, ok := findResult(snap.Results, benchName)
	if !ok {
		return fmt.Errorf("fresh run has no result for %s (did the benchmark rot?)", benchName)
	}

	nsRatio := got.NsPerOp / want.NsPerOp
	fmt.Printf("%s\n  ns/op     %14.0f -> %14.0f  (%+.1f%%)\n",
		benchName, want.NsPerOp, got.NsPerOp, (nsRatio-1)*100)
	var allocRatio float64
	if want.AllocsPerOp > 0 {
		allocRatio = float64(got.AllocsPerOp) / float64(want.AllocsPerOp)
		fmt.Printf("  allocs/op %14d -> %14d  (%+.1f%%)\n",
			want.AllocsPerOp, got.AllocsPerOp, (allocRatio-1)*100)
	}

	limit := 1 + maxRegress
	if nsRatio > limit {
		return fmt.Errorf("%s regressed: %.0f ns/op vs baseline %.0f (%.1f%% > %.0f%% allowed)",
			benchName, got.NsPerOp, want.NsPerOp, (nsRatio-1)*100, maxRegress*100)
	}
	if want.AllocsPerOp > 0 && allocRatio > limit {
		return fmt.Errorf("%s alloc-regressed: %d allocs/op vs baseline %d (%.1f%% > %.0f%% allowed)",
			benchName, got.AllocsPerOp, want.AllocsPerOp, (allocRatio-1)*100, maxRegress*100)
	}
	fmt.Printf("  within %.0f%% of baseline: ok\n", maxRegress*100)
	return nil
}

// findResult looks a benchmark up by name with the GOMAXPROCS suffix
// stripped from both sides, so `shared-cache` recorded at -procs=1 (no
// suffix) matches a fresh `shared-cache-4` line and vice versa.
func findResult(results []BenchResult, name string) (BenchResult, bool) {
	want := trimProcs(name)
	for _, r := range results {
		if trimProcs(r.Name) == want {
			return r, true
		}
	}
	return BenchResult{}, false
}

// trimProcs removes a trailing -N GOMAXPROCS suffix, if present.
func trimProcs(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name
	}
	if suffix := name[i+1:]; suffix != "" {
		for _, c := range suffix {
			if c < '0' || c > '9' {
				return name
			}
		}
		return name[:i]
	}
	return name
}

// parseBenchLine parses one `BenchmarkName-N  iters  12345 ns/op  ...`
// line; unparsable lines are skipped rather than fatal, so interleaved
// test log output cannot break the snapshot.
func parseBenchLine(line string) (BenchResult, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !hasUnit(fields, "ns/op") {
		return BenchResult{}, false
	}
	r := BenchResult{Name: fields[0]}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return BenchResult{}, false
	}
	r.Iterations = iters
	for i := 2; i+1 < len(fields); i += 2 {
		val := fields[i]
		switch fields[i+1] {
		case "ns/op":
			if v, err := strconv.ParseFloat(val, 64); err == nil {
				r.NsPerOp = v
			}
		case "B/op":
			if v, err := strconv.ParseInt(val, 10, 64); err == nil {
				r.BytesPerOp = v
			}
		case "allocs/op":
			if v, err := strconv.ParseInt(val, 10, 64); err == nil {
				r.AllocsPerOp = v
			}
		}
	}
	return r, r.NsPerOp > 0
}

// hasUnit reports whether any field equals the unit token.
func hasUnit(fields []string, unit string) bool {
	for _, f := range fields {
		if f == unit {
			return true
		}
	}
	return false
}
