package xsdf_test

// Bounded-memory acceptance: the reason incremental mode exists. A
// synthetic document ten times larger than the process memory ceiling is
// generated on the fly (never materialized) and must stream to
// completion in subtree mode with the live heap pinned near its
// baseline, while whole-document mode on the same input dies early with
// a typed resource-guard error — a controlled refusal, never an OOM.

import (
	"context"
	"errors"
	"fmt"
	"io"
	"runtime"
	"runtime/debug"
	"strings"
	"testing"

	"repro"
	"repro/xsdferrors"
)

// syntheticXML streams a well-formed document of roughly target bytes:
// one <corpus> root with a flat run of <item> subtrees (~7 KiB each)
// whose text tokens are outside every lexicon, so the pipeline's cost is
// parsing and selection, not scoring. It is a pure generator — the
// document never exists in memory, which is the point of the test.
type syntheticXML struct {
	remaining  []byte
	produced   int64
	target     int64
	headerDone bool
	footerDone bool
	seq        int
}

func (g *syntheticXML) Read(p []byte) (int, error) {
	if len(g.remaining) == 0 {
		switch {
		case !g.headerDone:
			g.headerDone = true
			g.remaining = []byte("<corpus>")
		case g.produced < g.target:
			g.seq++
			var b strings.Builder
			fmt.Fprintf(&b, `<item id="%d">`, g.seq)
			word := strings.Repeat(fmt.Sprintf("zq%d", g.seq%97), 12)
			for j := 0; j < 150; j++ {
				b.WriteString(word)
				b.WriteByte(' ')
			}
			b.WriteString("</item>")
			g.remaining = []byte(b.String())
		case !g.footerDone:
			g.footerDone = true
			g.remaining = []byte("</corpus>")
		default:
			return 0, io.EOF
		}
	}
	n := copy(p, g.remaining)
	g.remaining = g.remaining[n:]
	g.produced += int64(n)
	return n, nil
}

func TestSubtreeModeBoundedMemory(t *testing.T) {
	// The process memory ceiling for this test, enforced by the runtime:
	// the GC is required to keep total memory near this soft limit, so an
	// implementation that buffers the document (or leaks subtrees) shows
	// up as runaway HeapAlloc readings below.
	const memLimit = int64(16 << 20)
	docBytes := 10 * memLimit
	if testing.Short() {
		docBytes = 2 * memLimit // same mechanics, smaller sweep
	}

	fw, err := xsdf.New(xsdf.Options{})
	if err != nil {
		t.Fatal(err)
	}

	prev := debug.SetMemoryLimit(memLimit)
	defer debug.SetMemoryLimit(prev)

	var ms runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&ms)
	baseline := ms.HeapAlloc

	var peak uint64
	subtrees := 0
	sum, err := fw.DisambiguateSubtrees(context.Background(), &syntheticXML{target: docBytes},
		xsdf.SubtreeOptions{}, func(r xsdf.SubtreeResult) error {
			if r.Err != nil {
				return fmt.Errorf("subtree %d failed: %w", r.Index, r.Err)
			}
			subtrees++
			if subtrees%100 == 0 {
				runtime.ReadMemStats(&ms)
				if ms.HeapAlloc > peak {
					peak = ms.HeapAlloc
				}
			}
			return nil
		})
	if err != nil {
		t.Fatalf("subtree mode failed on a %d MiB document: %v", docBytes>>20, err)
	}
	if sum.Subtrees != subtrees || subtrees == 0 {
		t.Fatalf("summary reports %d subtrees, callback saw %d", sum.Subtrees, subtrees)
	}
	// The live heap must stay bounded by the ceiling no matter how large
	// the document: peak is sampled at subtree boundaries, where one
	// subtree plus the shared caches is all that may be alive.
	if peak >= uint64(memLimit) {
		t.Errorf("peak HeapAlloc %.1f MiB reached the %d MiB ceiling — memory grows with the document",
			float64(peak)/(1<<20), memLimit>>20)
	}
	t.Logf("streamed %d MiB (%d subtrees, %dx the %d MiB ceiling): baseline %.1f MiB, peak %.1f MiB",
		docBytes>>20, subtrees, docBytes/memLimit, memLimit>>20,
		float64(baseline)/(1<<20), float64(peak)/(1<<20))

	// Whole-document mode on the same generator must refuse with a typed
	// guard error long before memory is at risk: the node guard trips at
	// a bounded prefix of the document, and the error names the limit.
	guarded, err := xsdf.New(xsdf.Options{MaxNodes: 100_000})
	if err != nil {
		t.Fatal(err)
	}
	res, err := guarded.Disambiguate(&syntheticXML{target: docBytes})
	if res != nil || err == nil {
		t.Fatalf("whole-document mode accepted a %d MiB document (err=%v)", docBytes>>20, err)
	}
	var le *xsdferrors.LimitError
	if !errors.As(err, &le) || le.Limit != "nodes" {
		t.Fatalf("whole-document mode error = %v, want a typed nodes LimitError", err)
	}
}
