package xsdf_test

// Fault-tolerance acceptance tests for the public API: typed option
// errors, resource guards, panic isolation, batch partial failure, and
// cooperative cancellation.

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"repro"
	"repro/internal/core"
)

func TestUnknownOptionRejected(t *testing.T) {
	_, err := xsdf.New(xsdf.Options{VectorSimilarity: "euclidean"})
	if !errors.Is(err, xsdf.ErrUnknownOption) {
		t.Fatalf("want ErrUnknownOption, got %v", err)
	}
	if !strings.Contains(err.Error(), "euclidean") {
		t.Errorf("error must name the bad value: %v", err)
	}
	if _, err := xsdf.New(xsdf.Options{Method: xsdf.Method(42)}); !errors.Is(err, xsdf.ErrUnknownOption) {
		t.Errorf("bad Method: want ErrUnknownOption, got %v", err)
	}
	// The documented values still work, case-insensitively.
	for _, v := range []string{"", "cosine", "Jaccard", "PEARSON"} {
		if _, err := xsdf.New(xsdf.Options{VectorSimilarity: v}); err != nil {
			t.Errorf("VectorSimilarity %q rejected: %v", v, err)
		}
	}
}

func TestLinkResolutionReported(t *testing.T) {
	fw, err := xsdf.New(xsdf.Options{FollowLinks: true})
	if err != nil {
		t.Fatal(err)
	}
	res, err := fw.DisambiguateString(`<films>
	  <picture id="p1"><genre>mystery</genre></picture>
	  <review ref="#p1">classic</review>
	  <review ref="#missing">dangling</review>
	</films>`)
	if err != nil {
		t.Fatal(err)
	}
	if res.LinksResolved != 1 {
		t.Errorf("LinksResolved = %d, want 1", res.LinksResolved)
	}
	if res.LinksDangling != 1 {
		t.Errorf("LinksDangling = %d, want 1", res.LinksDangling)
	}
}

func TestParseGuardsPublicAPI(t *testing.T) {
	fw, err := xsdf.New(xsdf.Options{MaxDepth: 4, MaxTokenBytes: 32})
	if err != nil {
		t.Fatal(err)
	}
	deep := strings.Repeat("<a>", 8) + strings.Repeat("</a>", 8)
	_, err = fw.DisambiguateString(deep)
	var le *xsdf.LimitError
	if !errors.As(err, &le) || le.Limit != "depth" {
		t.Fatalf("deep doc: want depth *LimitError, got %v", err)
	}
	_, err = fw.DisambiguateString(`<a b="` + strings.Repeat("x", 64) + `"/>`)
	if !errors.As(err, &le) || le.Limit != "token-bytes" {
		t.Fatalf("huge attribute: want token-bytes *LimitError, got %v", err)
	}
	if _, err := fw.DisambiguateString("<a><b>ok</b></a>"); err != nil {
		t.Fatalf("benign doc rejected: %v", err)
	}
	if _, err := fw.DisambiguateString("<truncated"); !errors.Is(err, xsdf.ErrMalformedInput) {
		t.Fatalf("truncated doc: want ErrMalformedInput, got %v", err)
	}
}

// deepChain builds an in-memory tree deeper than the given element limit,
// standing in for a pre-parsed document that bypassed parse guards.
func deepChain(depth int) *xsdf.Tree {
	root := &xsdf.Node{Raw: "a", Label: "a", Kind: xsdf.ElementNode}
	cur := root
	for i := 0; i < depth; i++ {
		child := &xsdf.Node{Raw: "a", Label: "a", Kind: xsdf.ElementNode}
		cur.AddChild(child)
		cur = child
	}
	tr := &xsdf.Tree{Root: root}
	tr.Reindex()
	return tr
}

// TestBatchFaultToleranceAcceptance is the issue's acceptance scenario: a
// batch where one document panics and another exceeds MaxDepth completes,
// returns the other documents' results, and reports both failures as
// distinct typed errors matchable with errors.As.
func TestBatchFaultToleranceAcceptance(t *testing.T) {
	fw, err := xsdf.New(xsdf.Options{MaxDepth: 50})
	if err != nil {
		t.Fatal(err)
	}
	good1, err := fw.ParseTree(strings.NewReader(figure1a))
	if err != nil {
		t.Fatal(err)
	}
	poisoned, err := fw.ParseTree(strings.NewReader(figure1b))
	if err != nil {
		t.Fatal(err)
	}
	good2, err := fw.ParseTree(strings.NewReader(figure1a))
	if err != nil {
		t.Fatal(err)
	}
	trees := []*xsdf.Tree{good1, poisoned, deepChain(60), good2}

	restore := core.SetTestHooks(core.TestHooks{BeforeTree: func(tr *xsdf.Tree) {
		if tr == poisoned {
			panic("poisoned document")
		}
	}})
	defer restore()

	results, err := fw.DisambiguateBatchContext(context.Background(), trees, xsdf.BatchOptions{Workers: 2})
	if err == nil {
		t.Fatal("batch with two failing documents must report an error")
	}

	var be *xsdf.BatchError
	if !errors.As(err, &be) {
		t.Fatalf("want *BatchError, got %T: %v", err, err)
	}
	if got := be.Failed(); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("Failed() = %v, want [1 2]", got)
	}
	var pe *xsdf.PanicError
	if !errors.As(err, &pe) || pe.Doc != 1 {
		t.Fatalf("want *PanicError for document 1, got %v (doc %d)", err, pe.Doc)
	}
	var le *xsdf.LimitError
	if !errors.As(err, &le) || le.Limit != "depth" {
		t.Fatalf("want depth *LimitError, got %v", err)
	}
	if !errors.Is(err, xsdf.ErrLimitExceeded) {
		t.Error("sentinel ErrLimitExceeded must match through the batch error")
	}

	if results[1] != nil || results[2] != nil {
		t.Error("failed slots must be nil")
	}
	for _, i := range []int{0, 3} {
		if results[i] == nil || results[i].Assigned == 0 {
			t.Errorf("healthy document %d lost its result", i)
		}
	}
}

func TestSingleDocumentPanicIsolated(t *testing.T) {
	fw, err := xsdf.New(xsdf.Options{})
	if err != nil {
		t.Fatal(err)
	}
	restore := core.SetTestHooks(core.TestHooks{BeforeTree: func(*xsdf.Tree) { panic("boom") }})
	defer restore()
	res, err := fw.DisambiguateContext(context.Background(), strings.NewReader(figure1a))
	var pe *xsdf.PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("want *PanicError, got res=%v err=%v", res, err)
	}
	if pe.Doc != -1 || pe.Value != "boom" || len(pe.Stack) == 0 {
		t.Errorf("panic detail: %+v", pe)
	}
}

func TestCancellationPublicAPI(t *testing.T) {
	fw, err := xsdf.New(xsdf.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := fw.DisambiguateContext(ctx, strings.NewReader(figure1a)); !errors.Is(err, xsdf.ErrCanceled) {
		t.Fatalf("single doc: want ErrCanceled, got %v", err)
	}

	// Deadline flavor via per-document batch timeouts: a slowed document
	// times out without harming its neighbors.
	trees := []*xsdf.Tree{mustParse(t, fw, figure1a), mustParse(t, fw, figure1b)}
	slow := trees[1]
	restore := core.SetTestHooks(core.TestHooks{BeforeNode: func(n *xsdf.Node) {
		cur := n
		for cur.Parent != nil {
			cur = cur.Parent
		}
		if cur == slow.Root {
			time.Sleep(3 * time.Millisecond)
		}
	}})
	defer restore()
	results, err := fw.DisambiguateBatchContext(context.Background(), trees,
		xsdf.BatchOptions{Workers: 2, DocTimeout: 30 * time.Millisecond})
	if !errors.Is(err, xsdf.ErrCanceled) || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want deadline-flavored ErrCanceled, got %v", err)
	}
	if results[0] == nil {
		t.Error("fast document must survive the slow one's timeout")
	}
	if results[1] != nil {
		t.Error("timed-out slot must be nil")
	}
}

func mustParse(t *testing.T, fw *xsdf.Framework, doc string) *xsdf.Tree {
	t.Helper()
	tr, err := fw.ParseTree(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	return tr
}
