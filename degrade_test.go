package xsdf_test

// Public-API acceptance tests for graceful degradation and admission
// control: the ladder trades quality for completion under deadline
// pressure, the gate sheds load with typed overload errors, and batch runs
// keep the two failure families distinguishable.

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"repro"
	"repro/internal/core"
)

// TestDegradedResultPublicAPI: an already-expired deadline with the ladder
// on still completes the document — at first-sense, reported per document
// and per node.
func TestDegradedResultPublicAPI(t *testing.T) {
	fw, err := xsdf.New(xsdf.Options{Degrade: xsdf.DegradeOptions{Enabled: true}})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	res, err := fw.DisambiguateContext(ctx, strings.NewReader(figure1a))
	if err != nil {
		t.Fatalf("ladder must ride out the expired deadline: %v", err)
	}
	if res.Degraded != xsdf.DegradeFirstSense {
		t.Errorf("Result.Degraded = %v, want first-sense", res.Degraded)
	}
	if res.Unscored != 0 {
		t.Errorf("Unscored = %d, want 0 (run completed)", res.Unscored)
	}
	sum := 0
	for _, n := range res.NodesAtLevel {
		sum += n
	}
	if sum != res.Targets {
		t.Errorf("NodesAtLevel sum %d != Targets %d", sum, res.Targets)
	}
	marked := 0
	for _, n := range res.Tree.Nodes() {
		if n.Degraded == xsdf.DegradeFirstSense {
			marked++
		}
	}
	if marked != res.NodesAtLevel[xsdf.DegradeFirstSense] {
		t.Errorf("per-node marks %d != NodesAtLevel %d", marked, res.NodesAtLevel[xsdf.DegradeFirstSense])
	}
}

// TestWatermarkDegradation: the node-count watermark starts the document
// below full quality without any deadline at all.
func TestWatermarkDegradation(t *testing.T) {
	fw, err := xsdf.New(xsdf.Options{Degrade: xsdf.DegradeOptions{Enabled: true, ConceptOnlyAfter: 1}})
	if err != nil {
		t.Fatal(err)
	}
	res, err := fw.DisambiguateString(figure1a)
	if err != nil {
		t.Fatal(err)
	}
	if res.Degraded != xsdf.DegradeConceptOnly {
		t.Errorf("Degraded = %v, want concept-only", res.Degraded)
	}
	if res.NodesAtLevel[xsdf.DegradeNone] != 0 {
		t.Errorf("%d nodes ran at full quality past the watermark", res.NodesAtLevel[xsdf.DegradeNone])
	}
}

// TestCancelMidLadderKeepsPartialResult: cancelling during disambiguation
// with the ladder on returns the partial Result alongside a *DegradedError
// matching both sentinels.
func TestCancelMidLadderKeepsPartialResult(t *testing.T) {
	fw, err := xsdf.New(xsdf.Options{Degrade: xsdf.DegradeOptions{Enabled: true}})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var once sync.Once
	restore := core.SetTestHooks(core.TestHooks{BeforeNode: func(*xsdf.Node) {
		once.Do(cancel)
	}})
	defer restore()
	res, err := fw.DisambiguateTreeContext(ctx, mustParse(t, fw, figure1a))
	if !errors.Is(err, xsdf.ErrDegraded) || !errors.Is(err, xsdf.ErrCanceled) {
		t.Fatalf("want ErrDegraded+ErrCanceled, got %v", err)
	}
	var de *xsdf.DegradedError
	if !errors.As(err, &de) {
		t.Fatal("errors.As must find *DegradedError")
	}
	if res == nil {
		t.Fatal("degraded abort must keep the partial result")
	}
	if res.Unscored == 0 || res.Unscored != de.Unscored {
		t.Errorf("Unscored: result %d, error %d; want equal and > 0", res.Unscored, de.Unscored)
	}
}

// TestMixedBatchFailureModes is the acceptance scenario for the error
// taxonomy: one batch in which one document panics, one exceeds its
// per-document timeout, and one is turned away by the admission gate —
// every slot fails with its own typed error, and BatchError.Failed lists
// all three.
func TestMixedBatchFailureModes(t *testing.T) {
	fw, err := xsdf.New(xsdf.Options{Admission: xsdf.AdmissionOptions{MaxNodes: 100}})
	if err != nil {
		t.Fatal(err)
	}
	panicky := mustParse(t, fw, `<a><b>x</b></a>`)
	slow := mustParse(t, fw, `<a><b>y</b></a>`)
	big := mustParse(t, fw, figure1a) // > 5 nodes: cannot fit next to the blocker

	// The blocker occupies 95 of the gate's 100 node slots for the whole
	// batch, parked inside its BeforeTree hook.
	blocker := deepChain(94)
	hold := make(chan struct{})
	blockerDone := make(chan struct{})
	restore := core.SetTestHooks(core.TestHooks{BeforeTree: func(tr *xsdf.Tree) {
		switch tr {
		case blocker:
			<-hold
		case panicky:
			panic("poisoned document")
		case slow:
			time.Sleep(60 * time.Millisecond)
		}
	}})
	defer restore()
	go func() {
		defer close(blockerDone)
		fw.DisambiguateTree(blocker)
	}()
	defer func() { close(hold); <-blockerDone }()
	// Wait until the blocker holds its slots (its weight blocks big docs).
	for {
		if _, err := fw.DisambiguateTree(mustParse(t, fw, figure1b)); errors.Is(err, xsdf.ErrOverloaded) {
			break
		}
		time.Sleep(time.Millisecond)
	}

	results, err := fw.DisambiguateBatchContext(context.Background(),
		[]*xsdf.Tree{panicky, slow, big},
		xsdf.BatchOptions{Workers: 1, DocTimeout: 20 * time.Millisecond})
	var be *xsdf.BatchError
	if !errors.As(err, &be) {
		t.Fatalf("want *BatchError, got %v", err)
	}
	if got := be.Failed(); len(got) != 3 {
		t.Fatalf("Failed() = %v, want all three documents", got)
	}
	if got := be.Degraded(); len(got) != 0 {
		t.Errorf("Degraded() = %v, want none (ladder off)", got)
	}
	var pe *xsdf.PanicError
	if !errors.As(be.Errs[0], &pe) {
		t.Errorf("doc 0: want *PanicError, got %v", be.Errs[0])
	}
	if !errors.Is(be.Errs[1], xsdf.ErrCanceled) || !errors.Is(be.Errs[1], context.DeadlineExceeded) {
		t.Errorf("doc 1: want deadline-flavored ErrCanceled, got %v", be.Errs[1])
	}
	var oe *xsdf.OverloadError
	if !errors.As(be.Errs[2], &oe) {
		t.Errorf("doc 2: want *OverloadError, got %v", be.Errs[2])
	}
	for i, r := range results {
		if r != nil {
			t.Errorf("failed slot %d kept a result", i)
		}
	}
}

// TestBatchDegradedSlotKeepsResult: in a batch, a document canceled
// mid-ladder keeps its partial result in its slot, is listed by
// BatchError.Degraded, and excluded from Failed.
func TestBatchDegradedSlotKeepsResult(t *testing.T) {
	fw, err := xsdf.New(xsdf.Options{Degrade: xsdf.DegradeOptions{Enabled: true}})
	if err != nil {
		t.Fatal(err)
	}
	trees := []*xsdf.Tree{mustParse(t, fw, figure1a), mustParse(t, fw, figure1b)}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var once sync.Once
	restore := core.SetTestHooks(core.TestHooks{BeforeNode: func(*xsdf.Node) {
		once.Do(cancel)
	}})
	defer restore()

	results, err := fw.DisambiguateBatchContext(ctx, trees, xsdf.BatchOptions{Workers: 1})
	var be *xsdf.BatchError
	if !errors.As(err, &be) {
		t.Fatalf("want *BatchError, got %v", err)
	}
	if got := be.Degraded(); len(got) != 1 || got[0] != 0 {
		t.Fatalf("Degraded() = %v, want [0]", got)
	}
	if got := be.Failed(); len(got) != 1 || got[0] != 1 {
		t.Fatalf("Failed() = %v, want [1]", got)
	}
	if results[0] == nil || results[0].Unscored == 0 {
		t.Error("degraded slot must keep its partial result")
	}
	if results[1] != nil {
		t.Error("canceled undispatched slot must be nil")
	}
}

// TestOverloadPublicAPI: the gate rejects a concurrent arrival with
// ErrOverloaded and admits it again once capacity frees.
func TestOverloadPublicAPI(t *testing.T) {
	fw, err := xsdf.New(xsdf.Options{Admission: xsdf.AdmissionOptions{MaxDocs: 1}})
	if err != nil {
		t.Fatal(err)
	}
	blocker := mustParse(t, fw, figure1a)
	hold := make(chan struct{})
	started := make(chan struct{})
	done := make(chan struct{})
	restore := core.SetTestHooks(core.TestHooks{BeforeTree: func(tr *xsdf.Tree) {
		if tr == blocker {
			close(started)
			<-hold
		}
	}})
	defer restore()
	go func() {
		defer close(done)
		fw.DisambiguateTree(blocker)
	}()
	<-started

	_, err = fw.DisambiguateString(figure1b)
	var oe *xsdf.OverloadError
	if !errors.As(err, &oe) || !errors.Is(err, xsdf.ErrOverloaded) {
		t.Fatalf("want *OverloadError, got %v", err)
	}
	if oe.Docs != 1 {
		t.Errorf("overload snapshot Docs = %d, want 1", oe.Docs)
	}

	close(hold)
	<-done
	if _, err := fw.DisambiguateString(figure1b); err != nil {
		t.Fatalf("after capacity frees the document must process: %v", err)
	}
}
