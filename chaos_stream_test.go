package xsdf_test

// Streaming chaos suite: drives POST /v1/stream through seeded
// mid-stream-disconnect schedules (the PointStream wire faults — cuts and
// stalled writes) and asserts the resume protocol's exactly-once
// invariant: after the client's automatic resumes, the callback has seen
// every document's cursor exactly once, in order, and the stream reached
// its done-line. Run with -race; a failure reproduces from the seed in
// the subtest name.

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro"
	"repro/internal/faultinject"
	"repro/internal/server"
	"repro/internal/server/client"
)

// streamChaosSchedules is the number of seeded disconnect schedules.
const streamChaosSchedules = 50

func TestStreamChaosSchedules(t *testing.T) {
	n := int64(streamChaosSchedules)
	if testing.Short() {
		n = 8
	}

	// One framework and server for the whole suite: the faults under test
	// live on the wire (PointStream), not in the pipeline, and a shared
	// warm cache keeps 50 schedules fast. The breaker is disabled — a
	// high-rate cut schedule may never complete a stream attempt, and this
	// suite asserts resume accounting, not fail-fast behavior.
	fw, err := xsdf.New(xsdf.Options{})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := server.New(server.Config{
		Framework: fw,
		Breaker:   server.BreakerOptions{Disabled: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	docs := streamChaosDocs(t, 6)

	for seed := int64(1); seed <= n; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			runStreamChaosSchedule(t, ts.URL, docs, seed)
		})
	}
}

// TestStreamChaosSchedulesSubtree is the incremental-mode counterpart:
// seeded mid-document cuts (PointSubtree) and wire cuts (PointStream)
// sever subtree-mode streams between subtrees, and the resume protocol
// must still deliver every subtree line of every document exactly once,
// in global cursor order, with clean worker shutdown under -race.
func TestStreamChaosSchedulesSubtree(t *testing.T) {
	n := int64(streamChaosSchedules)
	if testing.Short() {
		n = 8
	}

	fw, err := xsdf.New(xsdf.Options{})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := server.New(server.Config{
		Framework: fw,
		Breaker:   server.BreakerOptions{Disabled: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	docs := streamChaosDocs(t, 4)
	// The ground truth the chaos schedules must reproduce: scanning each
	// document locally (no faults installed) tells us exactly how many
	// subtree lines a clean stream emits.
	wantLines := int64(0)
	for i, doc := range docs {
		count, err := countSubtrees(fw, doc)
		if err != nil {
			t.Fatalf("doc %d does not scan cleanly: %v", i, err)
		}
		wantLines += count
	}
	if wantLines <= int64(len(docs)) {
		t.Fatalf("corpus docs yield only %d subtrees — not a meaningful unroll", wantLines)
	}

	for seed := int64(1); seed <= n; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			runSubtreeChaosSchedule(t, ts.URL, docs, wantLines, seed)
		})
	}
}

// countSubtrees scans one document with the framework's scanner and
// returns how many subtrees a clean scan emits.
func countSubtrees(fw *xsdf.Framework, doc string) (int64, error) {
	sc := fw.SubtreeScanner(strings.NewReader(doc), xsdf.SubtreeOptions{})
	count := int64(0)
	for {
		_, err := sc.Next()
		if err == io.EOF {
			return count, nil
		}
		if err != nil {
			return count, err
		}
		count++
	}
}

// runSubtreeChaosSchedule derives one seed's cut/stall mix across both
// fault points and checks the exactly-once subtree account.
func runSubtreeChaosSchedule(t *testing.T, baseURL string, docs []string, wantLines, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	restore := faultinject.Install(faultinject.New(faultinject.Config{
		Seed: seed,
		// Mid-document cuts between subtrees, plus a slice of ordinary wire
		// cuts and stalls, so resumes land both inside and between documents.
		SubtreeCutRate:   0.02 + 0.20*rng.Float64(),
		SubtreeStallRate: 0.10 * rng.Float64(),
		SubtreeStall:     time.Millisecond,
		StreamCutRate:    0.10 * rng.Float64(),
	}))
	defer restore()

	c, err := client.New(client.Options{
		BaseURL:     baseURL,
		MaxRetries:  50,
		BaseBackoff: time.Millisecond,
		MaxBackoff:  5 * time.Millisecond,
		JitterSeed:  seed,
	})
	if err != nil {
		t.Fatal(err)
	}

	seen := make(map[int64]int)
	last := int64(0)
	stats, err := c.Stream(t.Context(), docs, client.StreamOptions{Subtree: true},
		func(line server.StreamLine) error {
			seen[line.Cursor]++
			if line.Cursor != last+1 {
				t.Errorf("cursor %d arrived after %d: out of order", line.Cursor, last)
			}
			last = line.Cursor
			if line.Status != http.StatusOK || line.Result == nil {
				t.Errorf("cursor %d: %+v, want a 200 result (no pipeline faults installed)", line.Cursor, line)
			}
			if line.Doc < 1 || line.Doc > int64(len(docs)) || line.Subtree < 1 {
				t.Errorf("cursor %d: locator doc %d subtree %d out of range", line.Cursor, line.Doc, line.Subtree)
			}
			return nil
		})
	if err != nil {
		t.Fatalf("stream never completed: %v (stats %+v)", err, stats)
	}

	for cursor := int64(1); cursor <= wantLines; cursor++ {
		switch seen[cursor] {
		case 1:
		case 0:
			t.Errorf("cursor %d lost", cursor)
		default:
			t.Errorf("cursor %d delivered %d times", cursor, seen[cursor])
		}
	}
	if len(seen) != int(wantLines) {
		t.Errorf("%d distinct cursors, want %d", len(seen), wantLines)
	}
	if stats.Delivered != wantLines {
		t.Errorf("stats.Delivered = %d, want %d", stats.Delivered, wantLines)
	}
	t.Logf("delivered %d subtree lines over %d attempts (%d resumes)", stats.Delivered, stats.Attempts, stats.Resumes)
}

// streamChaosDocs serializes a slice of the shared corpus back to raw XML.
func streamChaosDocs(t *testing.T, n int) []string {
	t.Helper()
	trees := freshCorpusTrees()
	if len(trees) > n {
		trees = trees[:n]
	}
	docs := make([]string, len(trees))
	for i, tree := range trees {
		var buf bytes.Buffer
		if err := tree.WriteXML(&buf, false); err != nil {
			t.Fatalf("doc %d: serialize: %v", i, err)
		}
		docs[i] = buf.String()
	}
	return docs
}

// runStreamChaosSchedule derives one seed's wire-fault mix, streams the
// documents through it, and checks the exactly-once account.
func runStreamChaosSchedule(t *testing.T, baseURL string, docs []string, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	restore := faultinject.Install(faultinject.New(faultinject.Config{
		Seed: seed,
		// Up to ~27% of emitted lines cut the connection; a further slice
		// stalls the write briefly (a congested wire, not a dead one).
		StreamCutRate:   0.02 + 0.25*rng.Float64(),
		StreamStallRate: 0.10 * rng.Float64(),
		StreamStall:     time.Millisecond,
	}))
	defer restore()

	c, err := client.New(client.Options{
		BaseURL: baseURL,
		// Aggressive resume policy: the suite's worst seeds cut over a
		// quarter of all lines, and the point is to survive them, not to
		// give up politely.
		MaxRetries:  50,
		BaseBackoff: time.Millisecond,
		MaxBackoff:  5 * time.Millisecond,
		JitterSeed:  seed,
	})
	if err != nil {
		t.Fatal(err)
	}

	seen := make(map[int64]int)
	last := int64(0)
	stats, err := c.Stream(t.Context(), docs, client.StreamOptions{},
		func(line server.StreamLine) error {
			seen[line.Cursor]++
			if line.Cursor != last+1 {
				t.Errorf("cursor %d arrived after %d: out of order", line.Cursor, last)
			}
			last = line.Cursor
			if line.Status != http.StatusOK || line.Result == nil {
				t.Errorf("cursor %d: %+v, want a 200 result (no pipeline faults installed)", line.Cursor, line)
			}
			return nil
		})
	if err != nil {
		t.Fatalf("stream never completed: %v (stats %+v)", err, stats)
	}

	// The exactly-once account: every document delivered once, none twice,
	// none lost, and the totals agree.
	for cursor := int64(1); cursor <= int64(len(docs)); cursor++ {
		switch seen[cursor] {
		case 1:
		case 0:
			t.Errorf("cursor %d lost", cursor)
		default:
			t.Errorf("cursor %d delivered %d times", cursor, seen[cursor])
		}
	}
	if len(seen) != len(docs) {
		t.Errorf("%d distinct cursors, want %d", len(seen), len(docs))
	}
	if stats.Delivered != int64(len(docs)) {
		t.Errorf("stats.Delivered = %d, want %d", stats.Delivered, len(docs))
	}
	t.Logf("delivered %d docs over %d attempts (%d resumes)", stats.Delivered, stats.Attempts, stats.Resumes)
}
